//! The SPMD world: PE launch, symmetric heap, one-sided access, collectives.
//!
//! This is the in-process stand-in for OpenSHMEM/NVSHMEM (see DESIGN.md):
//! each processing element (PE) is a thread executing the same program, the
//! symmetric heap is allocated collectively (same sizes, same order on every
//! PE), and remote partitions are reached with one-sided `put`/`get` exactly
//! as in the paper's Listing 5.

use crate::barrier::{BarrierToken, BarrierWaitError, SenseBarrier};
use crate::fault::{FaultAction, FaultPlan, PeFailure};
use crate::metrics::{MetricsTable, PeCounters, TrafficSnapshot};
use crate::proc::{ArenaFaults, ProcBarrier, ProcWorld, RespawnEvent};
use crate::race::{RaceDetector, ShadowArray};
use crate::shared::{SharedF64Vec, SharedU64Vec};
use std::any::Any;
use std::cell::Cell;
use std::sync::{Arc, Mutex};
use svsim_types::{PeOp, SvError, SvResult};

/// Handle to a symmetric `f64` array: every PE owns `len_per_pe` words and
/// can address any peer's copy.
#[derive(Debug, Clone)]
pub struct SymF64 {
    bufs: Arc<Vec<SharedF64Vec>>,
    len_per_pe: usize,
    /// Shadow state when this array was allocated in a race-detected world
    /// ([`launch_detected`]); `None` otherwise, keeping every accessor's
    /// fast path a single branch on an option the allocator decided once.
    shadow: Option<Arc<ShadowArray>>,
}

impl SymF64 {
    /// Words per PE.
    #[must_use]
    pub fn len_per_pe(&self) -> usize {
        self.len_per_pe
    }

    /// Direct reference to one PE's partition (peer-pointer-array analog).
    #[must_use]
    pub fn partition(&self, pe: usize) -> &SharedF64Vec {
        &self.bufs[pe]
    }

    /// Number of partitions (PEs).
    #[must_use]
    pub fn n_partitions(&self) -> usize {
        self.bufs.len()
    }
}

/// Handle to a symmetric `u64` array.
#[derive(Debug, Clone)]
pub struct SymU64 {
    bufs: Arc<Vec<SharedU64Vec>>,
    len_per_pe: usize,
    /// Shadow state in a race-detected world; see [`SymF64`].
    shadow: Option<Arc<ShadowArray>>,
}

impl SymU64 {
    /// Words per PE.
    #[must_use]
    pub fn len_per_pe(&self) -> usize {
        self.len_per_pe
    }

    /// Direct reference to one PE's partition.
    #[must_use]
    pub fn partition(&self, pe: usize) -> &SharedU64Vec {
        &self.bufs[pe]
    }
}

/// Which barrier implementation synchronizes this world's PEs: in-process
/// atomics (thread-backed) or `MAP_SHARED` arena words (process-backed).
/// Both run the same sense-reversing protocol with identical epoch and
/// poison semantics, so `ShmemCtx` stays one non-generic type.
#[derive(Debug)]
enum WorldBarrier {
    Sense(SenseBarrier),
    Proc(ProcBarrier),
}

impl WorldBarrier {
    fn try_wait(&self, token: &mut BarrierToken, pe: usize) -> Result<(), BarrierWaitError> {
        match self {
            // The thread barrier never times out (threads cannot vanish
            // without unwinding, which poisons), so its only failure maps
            // to the poisoned release.
            Self::Sense(b) => b.try_wait(token).map_err(|_| BarrierWaitError::Poisoned),
            Self::Proc(b) => b.try_wait(token, pe),
        }
    }

    fn poison(&self) {
        match self {
            Self::Sense(b) => b.poison(),
            Self::Proc(b) => b.poison(),
        }
    }
}

/// Where a world's injected-fault counters live: in the plan itself
/// (thread-backed — every PE shares one `Arc`) or mirrored into the shared
/// arena (process-backed — a forked child's plan copy would diverge from
/// its siblings', so the one-shot words must be OS-shared).
#[derive(Debug)]
enum FaultSource {
    Plan(Arc<FaultPlan>),
    Arena(ArenaFaults),
}

impl FaultSource {
    fn check(&self, pe: usize, op: PeOp) -> Option<FaultAction> {
        match self {
            Self::Plan(p) => p.check(pe, op),
            Self::Arena(a) => a.check(pe, op),
        }
    }
}

/// Shared world state behind every PE's [`ShmemCtx`].
#[derive(Debug)]
pub struct World {
    n_pes: usize,
    barrier: WorldBarrier,
    metrics: MetricsTable,
    /// Symmetric-heap allocation log: handles published by PE 0, indexed by
    /// allocation sequence number.
    heap_f64: Mutex<Vec<SymF64>>,
    heap_u64: Mutex<Vec<SymU64>>,
    /// Published shared objects of arbitrary type (see
    /// [`ShmemCtx::collective_publish`]).
    heap_misc: Mutex<Vec<Arc<dyn Any + Send + Sync>>>,
    /// Scratch slots for collectives (one word per PE).
    coll: SharedF64Vec,
    coll_u: SharedU64Vec,
    /// Injected-fault schedule, if this world runs under fault injection.
    faults: Option<FaultSource>,
    /// Dynamic race detector: when present, every symmetric allocation gets
    /// shadow state and every one-sided access is recorded against it.
    detector: Option<Arc<RaceDetector>>,
    /// Process-backed state (arena handle + layout) when the PEs are forked
    /// OS processes; `None` in the thread-backed world.
    proc: Option<ProcWorld>,
}

impl World {
    fn new(
        n_pes: usize,
        faults: Option<Arc<FaultPlan>>,
        detector: Option<Arc<RaceDetector>>,
    ) -> Self {
        Self {
            n_pes,
            barrier: WorldBarrier::Sense(SenseBarrier::new(n_pes)),
            metrics: MetricsTable::new(n_pes),
            heap_f64: Mutex::new(Vec::new()),
            heap_u64: Mutex::new(Vec::new()),
            heap_misc: Mutex::new(Vec::new()),
            coll: SharedF64Vec::new(n_pes, 0.0),
            coll_u: SharedU64Vec::new(n_pes, 0),
            faults: faults.map(FaultSource::Plan),
            detector,
            proc: None,
        }
    }

    /// World over a `MAP_SHARED` arena for the process backend: barrier,
    /// metrics, collective scratch, and fault counters all live in the
    /// arena; the heap mutexes stay empty (allocation goes through the
    /// arena's table). Built by [`crate::proc::launch_process`] *before*
    /// forking, so every child inherits the same world at the same
    /// addresses.
    pub(crate) fn new_process(n_pes: usize, pw: ProcWorld, plan: Option<&FaultPlan>) -> Self {
        Self {
            n_pes,
            barrier: WorldBarrier::Proc(pw.barrier()),
            metrics: pw.metrics_table(),
            heap_f64: Mutex::new(Vec::new()),
            heap_u64: Mutex::new(Vec::new()),
            heap_misc: Mutex::new(Vec::new()),
            coll: pw.coll_f64(),
            coll_u: pw.coll_u64(),
            faults: plan.map(|p| FaultSource::Arena(pw.arena_faults(p))),
            detector: None,
            proc: Some(pw),
        }
    }

    /// The process-backed state, when this world runs on forked PEs.
    pub(crate) fn proc(&self) -> Option<&ProcWorld> {
        self.proc.as_ref()
    }

    /// Poison the world's barrier (whichever backend), releasing spinning
    /// PEs into typed failures.
    pub(crate) fn poison_barrier(&self) {
        self.barrier.poison();
    }

    /// Per-PE traffic snapshots.
    pub(crate) fn snapshot_traffic(&self) -> Vec<TrafficSnapshot> {
        self.metrics.snapshot_all()
    }

    /// Build the per-PE execution context handed to the SPMD body.
    pub(crate) fn make_ctx(&self, pe: usize) -> ShmemCtx<'_> {
        ShmemCtx {
            pe,
            world: self,
            token: Cell::new(BarrierToken::default()),
            epoch: Cell::new(0),
            alloc_seq_f64: Cell::new(0),
            alloc_seq_u64: Cell::new(0),
            alloc_seq_misc: Cell::new(0),
            pending_drop: Cell::new(false),
        }
    }
}

/// Bounded deterministic stall used by [`FaultAction::Delay`].
fn stall(iters: u32) {
    for _ in 0..iters {
        std::hint::spin_loop();
    }
}

/// Per-PE execution context — the value passed to the SPMD body.
pub struct ShmemCtx<'w> {
    pe: usize,
    world: &'w World,
    token: Cell<BarrierToken>,
    epoch: Cell<u64>,
    /// Count of symmetric allocations this PE has participated in; used to
    /// pair each PE's `malloc` call with the published handle.
    alloc_seq_f64: Cell<usize>,
    alloc_seq_u64: Cell<usize>,
    alloc_seq_misc: Cell<usize>,
    /// An injected [`FaultAction::Drop`] lost a transfer; detection is
    /// deferred to this PE's next barrier (the synchronization point where
    /// a real fabric's delivery acknowledgment would surface it).
    pending_drop: Cell<bool>,
}

impl<'w> ShmemCtx<'w> {
    /// This PE's rank (`shmem_my_pe`).
    #[must_use]
    pub fn my_pe(&self) -> usize {
        self.pe
    }

    /// World size (`shmem_n_pes`).
    #[must_use]
    pub fn n_pes(&self) -> usize {
        self.world.n_pes
    }

    fn counters(&self) -> &PeCounters {
        self.world.metrics.pe(self.pe)
    }

    /// Global barrier (`shmem_barrier_all`).
    ///
    /// # Panics
    /// When the barrier is poisoned by a failed peer, or an injected fault
    /// kills this PE at the barrier. [`launch`] converts the panic into a
    /// typed per-PE error; use [`try_barrier_all`](Self::try_barrier_all)
    /// for in-band error handling instead.
    pub fn barrier_all(&self) {
        if let Err(e) = self.try_barrier_all() {
            match e {
                SvError::PeFailed { pe, op } => std::panic::panic_any(PeFailure { pe, op }),
                _ => panic!("shmem barrier poisoned: a peer PE panicked"),
            }
        }
    }

    /// Poison-aware barrier: like [`barrier_all`](Self::barrier_all) but a
    /// failed peer (or an injected fault on this PE) surfaces as an error
    /// instead of a panic, so SPMD bodies can shut down gracefully.
    ///
    /// On error the barrier is guaranteed poisoned and this PE's epoch is
    /// **not** advanced — every peer stuck in the same barrier reports the
    /// same [`barrier_epoch`](Self::barrier_epoch).
    ///
    /// # Errors
    /// [`SvError::PeFailed`] when an injected fault fires on this PE here
    /// (the barrier is poisoned first so peers cannot deadlock);
    /// [`SvError::Shmem`] when a peer poisoned the barrier;
    /// [`SvError::BarrierTimeout`] when the process backend's bounded wait
    /// expired with no poison observed (the barrier simply never released).
    pub fn try_barrier_all(&self) -> SvResult<()> {
        self.counters().count_barrier();
        if let Some(pw) = &self.world.proc {
            // Progress signal for the parent's watchdog: entering a barrier
            // is a liveness event even if the wait then blocks for a while
            // (the wait loop keeps bumping on its own).
            pw.heartbeat(self.pe);
        }
        if self.world.faults.is_some() {
            self.barrier_fault_points()?;
        }
        let mut tok = self.token.take();
        let r = self.world.barrier.try_wait(&mut tok, self.pe);
        self.token.set(tok);
        match r {
            Ok(()) => {
                let epoch = self.epoch.get() + 1;
                self.epoch.set(epoch);
                if let Some(pw) = &self.world.proc {
                    // Publish progress so the reaper can stamp
                    // epoch-at-death on an abnormal exit.
                    pw.set_epoch(self.pe, epoch);
                }
                Ok(())
            }
            Err(BarrierWaitError::Poisoned) => Err(SvError::Shmem(format!(
                "PE {}: barrier poisoned by a failed peer",
                self.pe
            ))),
            Err(BarrierWaitError::TimedOut { waited }) => Err(SvError::BarrierTimeout {
                pe: self.pe,
                epoch: self.epoch.get(),
                waited_ms: u64::try_from(waited.as_millis()).unwrap_or(u64::MAX),
            }),
        }
    }

    /// Injection hooks that run at barrier entry: surface a previously
    /// dropped transfer, then consult the plan for barrier-triggered faults.
    #[cold]
    fn barrier_fault_points(&self) -> SvResult<()> {
        let faults = self.world.faults.as_ref().expect("checked by caller");
        if self.pending_drop.get() {
            // A lost transfer is detected when delivery is acknowledged at
            // the synchronization point: fail the PE so the epoch whose
            // data is incomplete is discarded, never committed.
            self.pending_drop.set(false);
            self.world.barrier.poison();
            return Err(SvError::PeFailed {
                pe: self.pe,
                op: PeOp::Put,
            });
        }
        match faults.check(self.pe, PeOp::Barrier) {
            None | Some(FaultAction::Drop) | Some(FaultAction::TornCheckpoint) => Ok(()),
            Some(FaultAction::Delay(iters)) => {
                stall(iters);
                Ok(())
            }
            // Wedge without dying. On the process backend the PE stops
            // bumping its heartbeat and sleeps forever: only the parent's
            // watchdog can end it (SIGKILL → `SvError::PeHung`). The thread
            // backend has no supervisor to kill a thread, so Hang degrades
            // to Poison semantics there.
            Some(FaultAction::Hang) => {
                if self.world.proc.is_some() {
                    loop {
                        std::thread::sleep(std::time::Duration::from_millis(50));
                    }
                }
                self.world.barrier.poison();
                Err(SvError::PeFailed {
                    pe: self.pe,
                    op: PeOp::Barrier,
                })
            }
            // A PE killed at a barrier never arrives, so it must poison on
            // the way out or its peers would spin forever. On the process
            // backend "killed" is literal: the PE raises SIGKILL on itself
            // and the launcher reaps a signal death (`PeOp::Term`).
            Some(FaultAction::Kill) => {
                self.world.barrier.poison();
                if self.world.proc.is_some() {
                    crate::proc::die_by_sigkill();
                }
                Err(SvError::PeFailed {
                    pe: self.pe,
                    op: PeOp::Barrier,
                })
            }
            Some(FaultAction::Poison) => {
                self.world.barrier.poison();
                Err(SvError::PeFailed {
                    pe: self.pe,
                    op: PeOp::Barrier,
                })
            }
        }
    }

    /// Injection hook for one-sided transfers. Returns `true` when the
    /// transfer must be skipped (dropped by the fault plan).
    #[inline]
    fn transfer_fault(&self, op: PeOp) -> bool {
        match &self.world.faults {
            None => false,
            Some(faults) => self.transfer_fault_slow(faults, op),
        }
    }

    #[cold]
    fn transfer_fault_slow(&self, faults: &FaultSource, op: PeOp) -> bool {
        match faults.check(self.pe, op) {
            None | Some(FaultAction::TornCheckpoint) => false,
            Some(FaultAction::Delay(iters)) => {
                stall(iters);
                false
            }
            // See `barrier_fault_points`: wedge forever on the process
            // backend (the watchdog kills us), degrade to Poison on the
            // thread backend.
            Some(FaultAction::Hang) => {
                if self.world.proc.is_some() {
                    loop {
                        std::thread::sleep(std::time::Duration::from_millis(50));
                    }
                }
                self.world.barrier.poison();
                std::panic::panic_any(PeFailure { pe: self.pe, op });
            }
            Some(FaultAction::Drop) => {
                self.pending_drop.set(true);
                true
            }
            Some(FaultAction::Kill) => {
                // Process backend: die for real (the launcher reaps the
                // SIGKILL); poison first so peers release promptly rather
                // than waiting out the reaper.
                if self.world.proc.is_some() {
                    self.world.barrier.poison();
                    crate::proc::die_by_sigkill();
                }
                // Thread backend: `launch` poisons the barrier when it
                // catches the panic.
                std::panic::panic_any(PeFailure { pe: self.pe, op });
            }
            Some(FaultAction::Poison) => {
                self.world.barrier.poison();
                std::panic::panic_any(PeFailure { pe: self.pe, op });
            }
        }
    }

    /// Race-detection hook for a one-sided read that landed. The fast path
    /// (detection off) is a single branch on a `None` the allocator stored
    /// in the handle; the recording path is outlined and cold.
    #[inline]
    fn trace_read(&self, shadow: &Option<Arc<ShadowArray>>, owner_pe: usize, idx: usize) {
        if let Some(sh) = shadow {
            self.trace_read_slow(sh, owner_pe, idx, 1);
        }
    }

    #[cold]
    fn trace_read_slow(&self, sh: &ShadowArray, owner_pe: usize, start: usize, n: usize) {
        let epoch = self.epoch.get();
        for idx in start..start + n {
            let _ = sh.record_read(self.pe, epoch, owner_pe, idx, false);
        }
    }

    /// Race-detection hook for a one-sided write that landed.
    #[inline]
    fn trace_write(&self, shadow: &Option<Arc<ShadowArray>>, owner_pe: usize, idx: usize) {
        if let Some(sh) = shadow {
            self.trace_write_slow(sh, owner_pe, idx, 1);
        }
    }

    #[cold]
    fn trace_write_slow(&self, sh: &ShadowArray, owner_pe: usize, start: usize, n: usize) {
        let epoch = self.epoch.get();
        for idx in start..start + n {
            let _ = sh.record_write(self.pe, epoch, owner_pe, idx, false);
        }
    }

    /// Race-detection hook for an atomic read-modify-write.
    #[inline]
    fn trace_atomic(&self, shadow: &Option<Arc<ShadowArray>>, owner_pe: usize, idx: usize) {
        if let Some(sh) = shadow {
            self.trace_atomic_slow(sh, owner_pe, idx);
        }
    }

    #[cold]
    fn trace_atomic_slow(&self, sh: &ShadowArray, owner_pe: usize, idx: usize) {
        let _ = sh.record_atomic(self.pe, self.epoch.get(), owner_pe, idx);
    }

    /// Number of barriers this PE has passed — the synchronization epoch
    /// used by [`crate::checked`] for race detection. Identical across PEs
    /// at any synchronized point.
    #[must_use]
    pub fn barrier_epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Atomic unconditional swap on a `u64` word; returns the previous
    /// value.
    pub fn atomic_swap_u64(&self, sym: &SymU64, pe: usize, idx: usize, value: u64) -> u64 {
        self.trace_atomic(&sym.shadow, pe, idx);
        self.counters().count_atomic();
        sym.bufs[pe].swap(idx, value)
    }

    /// A symmetric-heap mutex was poisoned: a peer PE panicked while
    /// publishing an allocation. Healthy PEs get an error, not a panic, so
    /// one failed PE cannot cascade a lock-poison abort through the world.
    fn heap_poisoned(&self) -> SvError {
        SvError::Shmem(format!(
            "PE {}: symmetric heap lock poisoned by a failed peer",
            self.pe
        ))
    }

    /// Collective symmetric allocation of `len_per_pe` f64 words per PE
    /// (`nvshmem_malloc`). Must be called by **all** PEs in the same order.
    ///
    /// # Errors
    /// [`SvError::Shmem`] when the heap lock or barrier was poisoned by a
    /// failed peer, or when PEs disagree on size/order (collective call
    /// order violated).
    pub fn malloc_f64(&self, len_per_pe: usize) -> SvResult<SymF64> {
        let seq = self.alloc_seq_f64.get();
        self.alloc_seq_f64.set(seq + 1);
        if let Some(pw) = &self.world.proc {
            // Process backend: PE 0 bump-allocates inside the shared arena
            // and publishes {len, offset} in the allocation table; the
            // barrier orders publication before every PE's lookup, exactly
            // mirroring the thread path below.
            let made = if self.pe == 0 {
                pw.publish_alloc(true, seq, len_per_pe)
            } else {
                Ok(())
            };
            self.try_barrier_all()?;
            made?;
            let off = pw.lookup_alloc(self.pe, true, seq, len_per_pe)?;
            return Ok(SymF64 {
                bufs: Arc::new(pw.f64_partitions(off, len_per_pe)),
                len_per_pe,
                shadow: None,
            });
        }
        if self.pe == 0 {
            let handle = SymF64 {
                bufs: Arc::new(
                    (0..self.world.n_pes)
                        .map(|_| SharedF64Vec::new(len_per_pe, 0.0))
                        .collect(),
                ),
                len_per_pe,
                shadow: self.world.detector.as_ref().map(|d| d.shadow(len_per_pe)),
            };
            self.world
                .heap_f64
                .lock()
                .map_err(|_| self.heap_poisoned())?
                .push(handle);
        }
        self.try_barrier_all()?;
        let handle = self
            .world
            .heap_f64
            .lock()
            .map_err(|_| self.heap_poisoned())?
            .get(seq)
            .cloned()
            .ok_or_else(|| {
                SvError::Shmem(format!(
                    "PE {}: allocation #{seq} was never published (collective call order violated)",
                    self.pe
                ))
            })?;
        if handle.len_per_pe != len_per_pe {
            return Err(SvError::Shmem(format!(
                "PE {} called malloc_f64 with a mismatched size (collective call order violated)",
                self.pe
            )));
        }
        Ok(handle)
    }

    /// Collective symmetric allocation of `u64` words.
    ///
    /// # Errors
    /// Same contract as [`malloc_f64`](Self::malloc_f64).
    pub fn malloc_u64(&self, len_per_pe: usize) -> SvResult<SymU64> {
        let seq = self.alloc_seq_u64.get();
        self.alloc_seq_u64.set(seq + 1);
        if let Some(pw) = &self.world.proc {
            let made = if self.pe == 0 {
                pw.publish_alloc(false, seq, len_per_pe)
            } else {
                Ok(())
            };
            self.try_barrier_all()?;
            made?;
            let off = pw.lookup_alloc(self.pe, false, seq, len_per_pe)?;
            return Ok(SymU64 {
                bufs: Arc::new(pw.u64_partitions(off, len_per_pe)),
                len_per_pe,
                shadow: None,
            });
        }
        if self.pe == 0 {
            let handle = SymU64 {
                bufs: Arc::new(
                    (0..self.world.n_pes)
                        .map(|_| SharedU64Vec::new(len_per_pe, 0))
                        .collect(),
                ),
                len_per_pe,
                shadow: self.world.detector.as_ref().map(|d| d.shadow(len_per_pe)),
            };
            self.world
                .heap_u64
                .lock()
                .map_err(|_| self.heap_poisoned())?
                .push(handle);
        }
        self.try_barrier_all()?;
        let handle = self
            .world
            .heap_u64
            .lock()
            .map_err(|_| self.heap_poisoned())?
            .get(seq)
            .cloned()
            .ok_or_else(|| {
                SvError::Shmem(format!(
                    "PE {}: allocation #{seq} was never published (collective call order violated)",
                    self.pe
                ))
            })?;
        if handle.len_per_pe != len_per_pe {
            return Err(SvError::Shmem(format!(
                "PE {}: collective call order violated",
                self.pe
            )));
        }
        Ok(handle)
    }

    /// Collectively publish a shared object: PE 0 builds it with `make`,
    /// every PE (PE 0 included) receives the same `Arc`. Like
    /// [`malloc_f64`](Self::malloc_f64) this is a collective call — all PEs
    /// must call it in the same order with the same type `T`. Used by
    /// [`crate::checked`] to share per-array race-detection state.
    ///
    /// # Errors
    /// [`SvError::Shmem`] when the heap lock or barrier was poisoned, when
    /// the publication order was violated (missing slot or type mismatch),
    /// when `make` failed on PE 0 (peers then see a missing slot), or on
    /// the process backend (an `Arc` handle cannot cross a `fork`, so
    /// publication is inherently single-address-space).
    pub fn collective_publish<T, F>(&self, make: F) -> SvResult<Arc<T>>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> SvResult<Arc<T>>,
    {
        if self.world.proc.is_some() {
            return Err(SvError::Shmem(format!(
                "PE {}: collective_publish requires the thread backend \
                 (Arc handles cannot cross process boundaries)",
                self.pe
            )));
        }
        let seq = self.alloc_seq_misc.get();
        self.alloc_seq_misc.set(seq + 1);
        let mut made = Ok(());
        if self.pe == 0 {
            match make() {
                Ok(obj) => self
                    .world
                    .heap_misc
                    .lock()
                    .map_err(|_| self.heap_poisoned())?
                    .push(obj),
                // Still reach the barrier so peers do not deadlock; they
                // fail on the missing slot below.
                Err(e) => made = Err(e),
            }
        }
        self.try_barrier_all()?;
        made?;
        let obj = self
            .world
            .heap_misc
            .lock()
            .map_err(|_| self.heap_poisoned())?
            .get(seq)
            .cloned()
            .ok_or_else(|| {
                SvError::Shmem(format!(
                    "PE {}: publication #{seq} was never published (collective call order violated)",
                    self.pe
                ))
            })?;
        obj.downcast::<T>().map_err(|_| {
            SvError::Shmem(format!(
                "PE {}: publication #{seq} has a mismatched type (collective call order violated)",
                self.pe
            ))
        })
    }

    /// One-sided load of one word from `src_pe`'s partition
    /// (`nvshmem_double_g`). A dropped (injected) load returns `0.0`; the
    /// loss is detected at this PE's next barrier.
    #[inline]
    #[must_use]
    pub fn get_f64(&self, sym: &SymF64, src_pe: usize, idx: usize) -> f64 {
        if self.transfer_fault(PeOp::Get) {
            return 0.0;
        }
        self.trace_read(&sym.shadow, src_pe, idx);
        self.counters().count_get(src_pe != self.pe, 8);
        sym.bufs[src_pe].load(idx)
    }

    /// One-sided store of one word into `dst_pe`'s partition
    /// (`nvshmem_double_p`). A dropped (injected) store is lost at the
    /// fabric; the loss is detected at this PE's next barrier.
    #[inline]
    pub fn put_f64(&self, sym: &SymF64, dst_pe: usize, idx: usize, v: f64) {
        if self.transfer_fault(PeOp::Put) {
            return;
        }
        self.trace_write(&sym.shadow, dst_pe, idx);
        self.counters().count_put(dst_pe != self.pe, 8);
        sym.bufs[dst_pe].store(idx, v);
    }

    /// Contiguous one-sided load (`shmem_getmem`): one message, many words.
    pub fn get_slice_f64(&self, sym: &SymF64, src_pe: usize, start: usize, dst: &mut [f64]) {
        if self.transfer_fault(PeOp::Get) {
            return;
        }
        if let Some(sh) = &sym.shadow {
            self.trace_read_slow(sh, src_pe, start, dst.len());
        }
        self.counters()
            .count_get(src_pe != self.pe, 8 * dst.len() as u64);
        sym.bufs[src_pe].load_slice(start, dst);
    }

    /// Contiguous one-sided store (`shmem_putmem`).
    pub fn put_slice_f64(&self, sym: &SymF64, dst_pe: usize, start: usize, src: &[f64]) {
        if self.transfer_fault(PeOp::Put) {
            return;
        }
        if let Some(sh) = &sym.shadow {
            self.trace_write_slow(sh, dst_pe, start, src.len());
        }
        self.counters()
            .count_put(dst_pe != self.pe, 8 * src.len() as u64);
        sym.bufs[dst_pe].store_slice(start, src);
    }

    /// Atomic fetch-add on a remote f64 word.
    pub fn atomic_fetch_add_f64(&self, sym: &SymF64, pe: usize, idx: usize, delta: f64) -> f64 {
        self.trace_atomic(&sym.shadow, pe, idx);
        self.counters().count_atomic();
        sym.bufs[pe].fetch_add(idx, delta)
    }

    /// One-sided `u64` load.
    #[inline]
    #[must_use]
    pub fn get_u64(&self, sym: &SymU64, src_pe: usize, idx: usize) -> u64 {
        if self.transfer_fault(PeOp::Get) {
            return 0;
        }
        self.trace_read(&sym.shadow, src_pe, idx);
        self.counters().count_get(src_pe != self.pe, 8);
        sym.bufs[src_pe].load(idx)
    }

    /// One-sided `u64` store.
    #[inline]
    pub fn put_u64(&self, sym: &SymU64, dst_pe: usize, idx: usize, v: u64) {
        if self.transfer_fault(PeOp::Put) {
            return;
        }
        self.trace_write(&sym.shadow, dst_pe, idx);
        self.counters().count_put(dst_pe != self.pe, 8);
        sym.bufs[dst_pe].store(idx, v);
    }

    /// Atomic fetch-add on a `u64` word.
    pub fn atomic_fetch_add_u64(&self, sym: &SymU64, pe: usize, idx: usize, delta: u64) -> u64 {
        self.trace_atomic(&sym.shadow, pe, idx);
        self.counters().count_atomic();
        sym.bufs[pe].fetch_add(idx, delta)
    }

    /// Atomic compare-and-swap on a `u64` word; returns the previous value.
    pub fn atomic_compare_swap_u64(
        &self,
        sym: &SymU64,
        pe: usize,
        idx: usize,
        expected: u64,
        desired: u64,
    ) -> u64 {
        self.trace_atomic(&sym.shadow, pe, idx);
        self.counters().count_atomic();
        sym.bufs[pe].compare_swap(idx, expected, desired)
    }

    /// All-reduce sum over one f64 contribution per PE
    /// (`shmem_double_sum_to_all`). Collective.
    ///
    /// Partials combine with the canonical pairwise-tree association of
    /// [`svsim_types::numeric::pairwise_sum`], so a sum over per-partition
    /// contributions is bit-identical to the same sum evaluated on one PE.
    pub fn sum_reduce_f64(&self, x: f64) -> f64 {
        self.sum_reduce_f64_at(self.pe, x)
    }

    /// [`Self::sum_reduce_f64`] with an explicit scratch slot per PE.
    ///
    /// Under a remapped layout a PE's partial belongs at the slot of the
    /// logical subcube it holds, not at its own rank; callers must supply a
    /// permutation of `0..n_pes` (one distinct slot per PE) so the pairwise
    /// combine runs over logically ordered partials. Collective.
    pub fn sum_reduce_f64_at(&self, slot: usize, x: f64) -> f64 {
        self.world.coll.store(slot, x);
        self.barrier_all();
        let partials: Vec<f64> = (0..self.world.n_pes)
            .map(|p| self.world.coll.load(p))
            .collect();
        let total = svsim_types::numeric::pairwise_sum(&partials);
        self.barrier_all(); // protect the scratch slots from the next collective
        total
    }

    /// All-reduce max. Collective.
    pub fn max_reduce_f64(&self, x: f64) -> f64 {
        self.world.coll.store(self.pe, x);
        self.barrier_all();
        let m = (0..self.world.n_pes)
            .map(|p| self.world.coll.load(p))
            .fold(f64::NEG_INFINITY, f64::max);
        self.barrier_all();
        m
    }

    /// Broadcast a f64 from `root` to all PEs. Collective.
    pub fn broadcast_f64(&self, root: usize, x: f64) -> f64 {
        if self.pe == root {
            self.world.coll.store(0, x);
        }
        self.barrier_all();
        let v = self.world.coll.load(0);
        self.barrier_all();
        v
    }

    /// Broadcast a u64 from `root`. Collective.
    pub fn broadcast_u64(&self, root: usize, x: u64) -> u64 {
        if self.pe == root {
            self.world.coll_u.store(0, x);
        }
        self.barrier_all();
        let v = self.world.coll_u.load(0);
        self.barrier_all();
        v
    }

    /// This PE's traffic snapshot so far.
    #[must_use]
    pub fn my_traffic(&self) -> TrafficSnapshot {
        self.counters().snapshot()
    }
}

/// Result of an SPMD job: per-PE return values plus the traffic profile.
#[derive(Debug)]
pub struct JobOutput<T> {
    /// Per-PE results, indexed by rank.
    pub results: Vec<T>,
    /// Per-PE traffic, indexed by rank.
    pub traffic: Vec<TrafficSnapshot>,
}

impl<T> JobOutput<T> {
    /// Aggregate traffic over all PEs.
    #[must_use]
    pub fn total_traffic(&self) -> TrafficSnapshot {
        self.traffic
            .iter()
            .fold(TrafficSnapshot::default(), |acc, s| acc.merged(s))
    }
}

/// Per-PE results of a fault-aware SPMD job: every PE yields an
/// `Ok(value)` or a typed error describing how it failed. Peers of a
/// failed PE shut down cleanly (no resume-unwinding) and report their own
/// view of the failure.
#[derive(Debug)]
pub struct SpmdOutput<T> {
    /// Per-PE outcome, indexed by rank.
    pub results: Vec<SvResult<T>>,
    /// Per-PE traffic, indexed by rank.
    pub traffic: Vec<TrafficSnapshot>,
    /// Per-PE OS process ids on the process backend (the pid that produced
    /// each PE's final result — a respawned PE reports its replacement's
    /// pid, survivors their original fork's). Empty on the thread backend.
    pub pids: Vec<i32>,
    /// In-place respawns the supervisor performed, in order. Empty on the
    /// thread backend or when respawn is disabled.
    pub respawns: Vec<RespawnEvent>,
    /// Non-fatal launch warnings (e.g. a failed CPU-affinity pin), one
    /// human-readable line each.
    pub warnings: Vec<String>,
}

/// How informative an error is when picking the root cause of a job
/// failure: an injected/typed PE death (or a watchdog-confirmed hang)
/// beats a primary panic message, which beats a secondary "my peer
/// poisoned the barrier" / bounded-wait-expired report.
fn error_rank(e: &SvError) -> u8 {
    match e {
        SvError::PeFailed { .. } | SvError::PeHung { .. } => 0,
        SvError::Shmem(msg) if msg.contains("poisoned") => 2,
        SvError::BarrierTimeout { .. } => 2,
        _ => 1,
    }
}

impl<T> SpmdOutput<T> {
    /// The root-cause failure, if any PE failed. Prefers typed
    /// [`SvError::PeFailed`] over panic messages over secondary
    /// poison-observation reports.
    #[must_use]
    pub fn first_failure(&self) -> Option<&SvError> {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .min_by_key(|e| error_rank(e))
    }

    /// Collapse into an all-or-nothing [`JobOutput`]: `Ok` when every PE
    /// succeeded, otherwise the root-cause error.
    ///
    /// # Errors
    /// The most informative per-PE failure (see
    /// [`first_failure`](Self::first_failure)).
    pub fn into_result(self) -> SvResult<JobOutput<T>> {
        if let Some(e) = self.first_failure() {
            return Err(e.clone());
        }
        Ok(JobOutput {
            results: self
                .results
                .into_iter()
                .map(|r| r.expect("checked above"))
                .collect(),
            traffic: self.traffic,
        })
    }

    /// Aggregate traffic over all PEs.
    #[must_use]
    pub fn total_traffic(&self) -> TrafficSnapshot {
        self.traffic
            .iter()
            .fold(TrafficSnapshot::default(), |acc, s| acc.merged(s))
    }
}

/// Convert a caught PE panic payload into a typed error (shared with the
/// process backend's child-side harness).
pub(crate) fn classify_panic(pe: usize, payload: &(dyn std::any::Any + Send)) -> SvError {
    fn from_msg(pe: usize, msg: &str) -> SvError {
        if msg.contains("barrier poisoned") {
            SvError::Shmem(format!("PE {pe}: barrier poisoned by a failed peer"))
        } else {
            SvError::Shmem(format!("PE {pe} panicked: {msg}"))
        }
    }
    if let Some(f) = payload.downcast_ref::<PeFailure>() {
        SvError::PeFailed { pe: f.pe, op: f.op }
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        from_msg(pe, s)
    } else if let Some(s) = payload.downcast_ref::<String>() {
        from_msg(pe, s)
    } else {
        SvError::Shmem(format!("PE {pe} panicked"))
    }
}

/// Launch an SPMD job over `n_pes` PEs (the `shmem_init` + fork analog).
///
/// Every PE runs `body` with its own [`ShmemCtx`]. If any PE panics, the
/// barrier is poisoned so peers fail fast, every PE's panic is caught and
/// converted into a typed error, and the root cause is returned as `Err` —
/// callers never see a resumed unwind.
///
/// # Errors
/// [`SvError::InvalidConfig`] when `n_pes == 0`; [`SvError::PeFailed`] or
/// [`SvError::Shmem`] when a PE fails.
pub fn launch<T, F>(n_pes: usize, body: F) -> SvResult<JobOutput<T>>
where
    T: Send,
    F: Fn(&ShmemCtx<'_>) -> T + Sync,
{
    launch_with_faults(n_pes, None, body)?.into_result()
}

/// [`launch`] under a deterministic [`FaultPlan`], reporting per-PE
/// outcomes instead of collapsing to the first failure. This is the entry
/// point for fault-tolerance tests and the engine's recovery path: healthy
/// PEs still return `Ok`, failed PEs return the typed fault that killed
/// them, and nobody deadlocks (every injected death poisons the barrier).
///
/// # Errors
/// [`SvError::InvalidConfig`] when `n_pes == 0`. Per-PE failures are
/// reported in [`SpmdOutput::results`], not as a top-level error.
pub fn launch_with_faults<T, F>(
    n_pes: usize,
    faults: Option<Arc<FaultPlan>>,
    body: F,
) -> SvResult<SpmdOutput<T>>
where
    T: Send,
    F: Fn(&ShmemCtx<'_>) -> T + Sync,
{
    launch_inner(n_pes, faults, None, body)
}

/// [`launch_with_faults`] with the dynamic race detector armed: every
/// symmetric allocation in this world gets shadow state, every one-sided
/// access (put/get/slice/atomics) is recorded, and protocol violations
/// accumulate in `detector` as [`crate::race::RaceReport`]s instead of
/// failing the job — read them with [`RaceDetector::take_reports`] after
/// the launch returns. Composes with fault injection, which is the point:
/// an injected fault surfaces as a typed per-PE error while a genuine
/// protocol bug surfaces as a race report.
///
/// # Errors
/// [`SvError::InvalidConfig`] when `n_pes == 0` or the detector was
/// created for a different world size.
pub fn launch_detected<T, F>(
    n_pes: usize,
    faults: Option<Arc<FaultPlan>>,
    detector: Arc<RaceDetector>,
    body: F,
) -> SvResult<SpmdOutput<T>>
where
    T: Send,
    F: Fn(&ShmemCtx<'_>) -> T + Sync,
{
    if detector.n_pes() != n_pes {
        return Err(SvError::InvalidConfig(format!(
            "race detector was created for {} PEs, world has {n_pes}",
            detector.n_pes()
        )));
    }
    launch_inner(n_pes, faults, Some(detector), body)
}

fn launch_inner<T, F>(
    n_pes: usize,
    faults: Option<Arc<FaultPlan>>,
    detector: Option<Arc<RaceDetector>>,
    body: F,
) -> SvResult<SpmdOutput<T>>
where
    T: Send,
    F: Fn(&ShmemCtx<'_>) -> T + Sync,
{
    if n_pes == 0 {
        return Err(SvError::InvalidConfig("n_pes must be >= 1".into()));
    }
    let world = World::new(n_pes, faults, detector);
    let mut slots: Vec<Option<SvResult<T>>> = (0..n_pes).map(|_| None).collect();
    std::thread::scope(|scope| {
        let world = &world;
        let body = &body;
        let handles: Vec<_> = slots
            .iter_mut()
            .enumerate()
            .map(|(pe, slot)| {
                scope.spawn(move || {
                    let ctx = world.make_ctx(pe);
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&ctx)));
                    *slot = Some(match r {
                        Ok(v) => Ok(v),
                        Err(payload) => {
                            // Poison first so peers spinning in a barrier
                            // fail fast instead of deadlocking.
                            world.barrier.poison();
                            Err(classify_panic(pe, payload.as_ref()))
                        }
                    });
                })
            })
            .collect();
        for h in handles {
            // Threads no longer unwind: every panic is caught in the body.
            h.join().expect("PE thread cannot unwind");
        }
    });
    let traffic = world.metrics.snapshot_all();
    Ok(SpmdOutput {
        results: slots
            .into_iter()
            .map(|s| s.expect("PE completed without result"))
            .collect(),
        traffic,
        pids: Vec::new(),
        respawns: Vec::new(),
        warnings: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_and_world_size() {
        let out = launch(4, |ctx| (ctx.my_pe(), ctx.n_pes())).unwrap();
        for (pe, &(rank, n)) in out.results.iter().enumerate() {
            assert_eq!(rank, pe);
            assert_eq!(n, 4);
        }
    }

    #[test]
    fn zero_pes_rejected() {
        assert!(launch(0, |_| ()).is_err());
    }

    #[test]
    fn symmetric_heap_put_get() {
        // Ring exchange: each PE writes its rank into its right neighbor's
        // partition, then reads its own slot.
        let out = launch(4, |ctx| {
            let sym = ctx.malloc_f64(1).expect("alloc");
            let right = (ctx.my_pe() + 1) % ctx.n_pes();
            ctx.put_f64(&sym, right, 0, ctx.my_pe() as f64);
            ctx.barrier_all();
            ctx.get_f64(&sym, ctx.my_pe(), 0)
        })
        .unwrap();
        assert_eq!(out.results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn traffic_is_classified() {
        let out = launch(2, |ctx| {
            let sym = ctx.malloc_f64(4).expect("alloc");
            // one local put, one remote put, one remote get
            ctx.put_f64(&sym, ctx.my_pe(), 0, 1.0);
            ctx.put_f64(&sym, 1 - ctx.my_pe(), 1, 2.0);
            ctx.barrier_all();
            ctx.get_f64(&sym, 1 - ctx.my_pe(), 0)
        })
        .unwrap();
        let agg = out.total_traffic();
        assert_eq!(agg.local_puts, 2);
        assert_eq!(agg.remote_puts, 2);
        assert_eq!(agg.remote_gets, 2);
        assert_eq!(agg.remote_bytes(), 2 * 8 + 2 * 8);
        assert_eq!(out.results, vec![1.0, 1.0]);
    }

    #[test]
    fn slice_transfers() {
        let out = launch(2, |ctx| {
            let sym = ctx.malloc_f64(8).expect("alloc");
            if ctx.my_pe() == 0 {
                ctx.put_slice_f64(&sym, 1, 2, &[5.0, 6.0, 7.0]);
            }
            ctx.barrier_all();
            let mut buf = [0.0; 3];
            ctx.get_slice_f64(&sym, 1, 2, &mut buf);
            buf
        })
        .unwrap();
        assert_eq!(out.results[0], [5.0, 6.0, 7.0]);
        assert_eq!(out.results[1], [5.0, 6.0, 7.0]);
        // Slice ops count as one message each.
        assert_eq!(out.total_traffic().remote_puts, 1);
    }

    #[test]
    fn reductions_and_broadcast() {
        let out = launch(4, |ctx| {
            let sum = ctx.sum_reduce_f64(ctx.my_pe() as f64 + 1.0);
            let max = ctx.max_reduce_f64(ctx.my_pe() as f64);
            let b = ctx.broadcast_f64(2, if ctx.my_pe() == 2 { 42.0 } else { 0.0 });
            let bu = ctx.broadcast_u64(1, if ctx.my_pe() == 1 { 7 } else { 0 });
            (sum, max, b, bu)
        })
        .unwrap();
        for &(sum, max, b, bu) in &out.results {
            assert_eq!(sum, 10.0);
            assert_eq!(max, 3.0);
            assert_eq!(b, 42.0);
            assert_eq!(bu, 7);
        }
    }

    #[test]
    fn back_to_back_collectives_do_not_interfere() {
        let out = launch(3, |ctx| {
            let a = ctx.sum_reduce_f64(1.0);
            let b = ctx.sum_reduce_f64(2.0);
            let c = ctx.max_reduce_f64(ctx.my_pe() as f64);
            (a, b, c)
        })
        .unwrap();
        for &(a, b, c) in &out.results {
            assert_eq!((a, b, c), (3.0, 6.0, 2.0));
        }
    }

    #[test]
    fn multiple_allocations_in_order() {
        let out = launch(2, |ctx| {
            let a = ctx.malloc_f64(2).expect("alloc");
            let b = ctx.malloc_f64(3).expect("alloc");
            let f = ctx.malloc_u64(1).expect("alloc");
            ctx.put_f64(&a, ctx.my_pe(), 0, 1.0);
            ctx.put_f64(&b, ctx.my_pe(), 2, 2.0);
            ctx.atomic_fetch_add_u64(&f, 0, 0, 1);
            ctx.barrier_all();
            (a.len_per_pe(), b.len_per_pe(), ctx.get_u64(&f, 0, 0))
        })
        .unwrap();
        assert_eq!(out.results[0], (2, 3, 2));
    }

    #[test]
    fn atomic_fetch_add_f64_across_pes() {
        let out = launch(4, |ctx| {
            let sym = ctx.malloc_f64(1).expect("alloc");
            ctx.barrier_all();
            // Everyone adds into PE 0's slot.
            ctx.atomic_fetch_add_f64(&sym, 0, 0, 1.5);
            ctx.barrier_all();
            ctx.get_f64(&sym, 0, 0)
        })
        .unwrap();
        assert_eq!(out.results[1], 6.0);
    }

    #[test]
    fn panic_in_one_pe_becomes_typed_error() {
        // A PE panic no longer unwinds out of `launch`: the job returns a
        // typed error naming the failed PE, and peers stuck in the barrier
        // shut down cleanly instead of deadlocking.
        let err = launch(3, |ctx| {
            if ctx.my_pe() == 1 {
                panic!("PE 1 exploded");
            }
            // Peers head into a barrier that PE 1 never reaches.
            ctx.barrier_all();
        })
        .unwrap_err();
        assert!(
            err.to_string().contains("PE 1 exploded"),
            "root cause should win over poison observations, got: {err}"
        );
    }

    #[test]
    fn per_pe_results_separate_victim_from_witnesses() {
        use crate::fault::{FaultAction, FaultPlan};
        use svsim_types::PeOp;
        // Kill PE 2 at its 3rd put; every other PE must report the
        // poisoned barrier as an error, not hang or panic.
        let plan = Arc::new(FaultPlan::new().with(2, PeOp::Put, 3, FaultAction::Kill));
        let out = launch_with_faults(4, Some(plan), |ctx| {
            let sym = ctx.malloc_f64(4)?;
            for i in 0..4 {
                ctx.put_f64(&sym, (ctx.my_pe() + 1) % ctx.n_pes(), i, 1.0);
            }
            ctx.try_barrier_all()?;
            Ok::<_, SvError>(ctx.my_pe())
        })
        .unwrap();
        // The victim carries the typed fault (possibly nested in its own
        // Ok(Err(..)) body result — here the kill panics, so outer Err).
        assert_eq!(
            out.results[2].as_ref().unwrap_err(),
            &SvError::PeFailed {
                pe: 2,
                op: PeOp::Put
            }
        );
        for pe in [0usize, 1, 3] {
            match &out.results[pe] {
                Ok(Err(SvError::Shmem(msg))) => assert!(msg.contains("poisoned"), "{msg}"),
                other => panic!("PE {pe}: expected clean poison report, got {other:?}"),
            }
        }
    }

    /// All peers must observe a barrier poisoning in the *same* barrier
    /// epoch: a fault at the victim's Nth barrier fires at barrier entry
    /// (the victim never arrives), so nobody passes that barrier and every
    /// PE — victim included — still holds epoch N-1 when it sees the error.
    #[test]
    fn poisoning_is_observed_in_the_same_epoch_by_all_pes() {
        use crate::fault::{FaultAction, FaultPlan};
        use svsim_types::PeOp;
        const N: usize = 4;
        const AT: u64 = 10;
        for action in [FaultAction::Kill, FaultAction::Poison] {
            let plan = Arc::new(FaultPlan::new().with(2, PeOp::Barrier, AT, action));
            let out = launch_with_faults(N, Some(plan), |ctx| {
                for _ in 0..32 {
                    if ctx.try_barrier_all().is_err() {
                        return ctx.barrier_epoch();
                    }
                }
                u64::MAX // fault never observed — fails the assertion below
            })
            .unwrap();
            let epochs: Vec<u64> = out
                .results
                .iter()
                .map(|r| *r.as_ref().expect("try_barrier_all keeps PEs alive"))
                .collect();
            assert_eq!(
                epochs,
                vec![AT - 1; N],
                "{action:?}: every PE must stop at the epoch before the poisoned barrier"
            );
        }
    }

    /// Same epoch agreement when the victim uses the panicking
    /// `barrier_all`: the victim dies with a typed error while peers on the
    /// poison-aware path shut down cleanly — all in the same epoch, with no
    /// deadlock even though the victim never reaches its own poison report.
    #[test]
    fn killed_pe_and_survivors_agree_on_the_poisoned_epoch() {
        use crate::fault::{FaultAction, FaultPlan};
        use svsim_types::PeOp;
        const AT: u64 = 5;
        let plan = Arc::new(FaultPlan::new().with(1, PeOp::Barrier, AT, FaultAction::Kill));
        let out = launch_with_faults(3, Some(plan), |ctx| {
            for _ in 0..16 {
                if ctx.my_pe() == 1 {
                    ctx.barrier_all(); // panics at the injected fault
                } else if ctx.try_barrier_all().is_err() {
                    return ctx.barrier_epoch();
                }
            }
            u64::MAX
        })
        .unwrap();
        assert_eq!(
            out.results[1].as_ref().unwrap_err(),
            &SvError::PeFailed {
                pe: 1,
                op: PeOp::Barrier
            }
        );
        for pe in [0usize, 2] {
            assert_eq!(
                *out.results[pe].as_ref().unwrap(),
                AT - 1,
                "PE {pe} must observe the poisoning in the failed barrier's epoch"
            );
        }
    }

    /// Repeated launches under barrier poisoning must neither deadlock nor
    /// leak poisoned state into later worlds (each launch builds a fresh
    /// barrier).
    #[test]
    fn poisoned_worlds_do_not_contaminate_later_launches() {
        use crate::fault::{FaultAction, FaultPlan};
        use svsim_types::PeOp;
        for round in 0..8u64 {
            let plan = Arc::new(FaultPlan::new().with(
                (round % 3) as usize,
                PeOp::Barrier,
                1 + round % 4,
                FaultAction::Poison,
            ));
            let out = launch_with_faults(3, Some(plan), |ctx| {
                for _ in 0..8 {
                    if ctx.try_barrier_all().is_err() {
                        return Err(ctx.barrier_epoch());
                    }
                }
                Ok(ctx.barrier_epoch())
            })
            .unwrap();
            // Exactly one consistent observation epoch across survivors.
            let epochs: Vec<u64> = out
                .results
                .iter()
                .filter_map(|r| r.as_ref().ok())
                .map(|body| match body {
                    Ok(e) | Err(e) => *e,
                })
                .collect();
            assert!(!epochs.is_empty(), "round {round}: survivors must report");
            assert!(
                epochs.windows(2).all(|w| w[0] == w[1]),
                "round {round}: epoch disagreement {epochs:?}"
            );
            // A clean follow-up launch must work: no poison leaks across
            // worlds.
            let clean = launch(3, |ctx| {
                ctx.barrier_all();
                ctx.my_pe()
            })
            .unwrap();
            assert_eq!(clean.results, vec![0, 1, 2]);
        }
    }

    #[test]
    fn detected_launch_clean_protocol_reports_nothing() {
        use crate::race::RaceDetector;
        let det = RaceDetector::new(4).unwrap();
        // The ring exchange from `symmetric_heap_put_get` is disciplined:
        // disjoint writes, then a barrier, then reads.
        let out = launch_detected(4, None, Arc::clone(&det), |ctx| {
            let sym = ctx.malloc_f64(1).expect("alloc");
            let right = (ctx.my_pe() + 1) % ctx.n_pes();
            ctx.put_f64(&sym, right, 0, ctx.my_pe() as f64);
            ctx.barrier_all();
            ctx.get_f64(&sym, ctx.my_pe(), 0)
        })
        .unwrap()
        .into_result()
        .unwrap();
        assert_eq!(out.results, vec![3.0, 0.0, 1.0, 2.0]);
        assert_eq!(det.race_count(), 0, "{:?}", det.reports());
    }

    #[test]
    fn detected_launch_flags_unsynchronized_slice_overlap() {
        use crate::race::{ConflictKind, RaceDetector};
        let det = RaceDetector::new(2).unwrap();
        launch_detected(2, None, Arc::clone(&det), |ctx| {
            let sym = ctx.malloc_f64(8).expect("alloc");
            // Both PEs store an overlapping slice into PE 0 with no barrier
            // in between: words 0..3 and 2..5 collide on word 2.
            let start = 2 * ctx.my_pe();
            ctx.put_slice_f64(&sym, 0, start, &[1.0; 3]);
            ctx.barrier_all();
        })
        .unwrap()
        .into_result()
        .unwrap();
        let reports = det.take_reports();
        assert!(!reports.is_empty(), "overlap must be detected");
        for r in &reports {
            assert_eq!(r.kind, ConflictKind::WriteWrite);
            assert_eq!(r.owner_pe, 0);
            assert_eq!(r.index, 2, "the overlap is exactly word 2");
        }
    }

    #[test]
    fn detected_launch_is_epoch_aware_across_allocations() {
        use crate::race::RaceDetector;
        let det = RaceDetector::new(2).unwrap();
        launch_detected(2, None, Arc::clone(&det), |ctx| {
            let a = ctx.malloc_f64(2).expect("alloc");
            let b = ctx.malloc_u64(2).expect("alloc");
            // Same word of *different* arrays in the same epoch: no race.
            ctx.put_f64(&a, 0, ctx.my_pe(), 1.0);
            ctx.put_u64(&b, 0, ctx.my_pe(), 1);
            ctx.barrier_all();
            // Same word of the same array in *different* epochs: no race.
            ctx.put_f64(&a, 0, 0, f64::from(ctx.my_pe() as u32));
            ctx.barrier_all();
        })
        .unwrap()
        .into_result()
        .unwrap();
        // The second phase writes word 0@PE0 from both PEs in the same
        // epoch — that IS a race; everything else is clean.
        let reports = det.take_reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].index, 0);
    }

    /// Satellite coverage: every atomic op racing a plain `put`/`get` in
    /// the same epoch is an atomic-mixed conflict; atomic-vs-atomic is
    /// allowed. Sleeps order the accesses deterministically enough for the
    /// shadow cells (same-word atomics are coherent).
    #[test]
    fn atomics_vs_plain_accesses_under_the_detector() {
        use crate::race::{ConflictKind, RaceDetector};
        type AtomicOp = fn(&ShmemCtx<'_>, &SymU64);
        let u64_ops: [(&str, AtomicOp); 3] = [
            ("fetch_add_u64", |ctx, sym| {
                ctx.atomic_fetch_add_u64(sym, 0, 0, 1);
            }),
            ("swap_u64", |ctx, sym| {
                ctx.atomic_swap_u64(sym, 0, 0, 7);
            }),
            ("compare_swap_u64", |ctx, sym| {
                ctx.atomic_compare_swap_u64(sym, 0, 0, 0, 9);
            }),
        ];
        for (name, op) in u64_ops {
            for plain_is_write in [true, false] {
                let det = RaceDetector::new(2).unwrap();
                launch_detected(2, None, Arc::clone(&det), |ctx| {
                    let sym = ctx.malloc_u64(1).expect("alloc");
                    if ctx.my_pe() == 0 {
                        op(ctx, &sym);
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    } else {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        if plain_is_write {
                            ctx.put_u64(&sym, 0, 0, 3);
                        } else {
                            let _ = ctx.get_u64(&sym, 0, 0);
                        }
                    }
                    ctx.barrier_all();
                })
                .unwrap()
                .into_result()
                .unwrap();
                let reports = det.take_reports();
                assert!(
                    !reports.is_empty(),
                    "{name} vs plain {} must conflict",
                    if plain_is_write { "put" } else { "get" }
                );
                assert!(
                    reports.iter().all(|r| r.kind == ConflictKind::AtomicMixed),
                    "{name}: expected atomic-mixed, got {reports:?}"
                );
            }
        }
    }

    #[test]
    fn atomic_fetch_add_f64_vs_plain_put_is_atomic_mixed() {
        use crate::race::{ConflictKind, RaceDetector};
        let det = RaceDetector::new(2).unwrap();
        launch_detected(2, None, Arc::clone(&det), |ctx| {
            let sym = ctx.malloc_f64(1).expect("alloc");
            if ctx.my_pe() == 0 {
                ctx.atomic_fetch_add_f64(&sym, 0, 0, 1.0);
                std::thread::sleep(std::time::Duration::from_millis(5));
            } else {
                std::thread::sleep(std::time::Duration::from_millis(2));
                ctx.put_f64(&sym, 0, 0, 3.0);
            }
            ctx.barrier_all();
        })
        .unwrap()
        .into_result()
        .unwrap();
        let reports = det.take_reports();
        assert!(!reports.is_empty());
        assert!(reports.iter().all(|r| r.kind == ConflictKind::AtomicMixed));
    }

    #[test]
    fn concurrent_atomics_are_not_races() {
        use crate::race::RaceDetector;
        let det = RaceDetector::new(4).unwrap();
        let out = launch_detected(4, None, Arc::clone(&det), |ctx| {
            let acc = ctx.malloc_f64(1).expect("alloc");
            let cnt = ctx.malloc_u64(1).expect("alloc");
            // All four PEs hammer the same words with atomics, same epoch.
            ctx.atomic_fetch_add_f64(&acc, 0, 0, 0.5);
            ctx.atomic_fetch_add_u64(&cnt, 0, 0, 1);
            ctx.barrier_all();
            (ctx.get_f64(&acc, 0, 0), ctx.get_u64(&cnt, 0, 0))
        })
        .unwrap()
        .into_result()
        .unwrap();
        assert_eq!(out.results[0], (2.0, 4));
        assert_eq!(det.race_count(), 0, "{:?}", det.reports());
    }

    #[test]
    fn detector_world_size_mismatch_is_rejected() {
        use crate::race::RaceDetector;
        let det = RaceDetector::new(2).unwrap();
        assert!(launch_detected(4, None, det, |_| ()).is_err());
    }

    #[test]
    fn collective_publish_shares_one_object() {
        let out = launch(4, |ctx| {
            let shared: Arc<Vec<u64>> = ctx
                .collective_publish(|| Ok(Arc::new(vec![ctx.my_pe() as u64 * 10 + 7])))
                .expect("publish");
            shared[0]
        })
        .unwrap();
        // Every PE sees PE 0's object, not its own closure's value.
        assert_eq!(out.results, vec![7, 7, 7, 7]);
    }

    #[test]
    fn collective_publish_type_mismatch_is_an_error() {
        let out = launch_with_faults(2, None, |ctx| {
            if ctx.my_pe() == 0 {
                let r: SvResult<Arc<Vec<u64>>> =
                    ctx.collective_publish(|| Ok(Arc::new(vec![1u64])));
                r.map(|_| ())
            } else {
                // Wrong type for publication #0: must error, not alias.
                let r: SvResult<Arc<String>> =
                    ctx.collective_publish(|| Ok(Arc::new(String::new())));
                match r {
                    Err(SvError::Shmem(msg)) => {
                        assert!(msg.contains("mismatched type"), "{msg}");
                        Ok(())
                    }
                    other => panic!("expected type-mismatch error, got {other:?}"),
                }
            }
        })
        .unwrap();
        assert!(out.results.iter().all(|r| matches!(r, Ok(Ok(())))));
    }
}
