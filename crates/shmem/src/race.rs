//! Epoch-scoped dynamic race detection for the one-sided access protocol.
//!
//! SHMEM's correctness contract (paper §2.2) is that one-sided accesses
//! between two barriers must be conflict-free: the fabric orders nothing,
//! so a conflicting `put`/`get` pair is a silent amplitude corruption. This
//! module is the TSan-style runtime half of the access-protocol analysis
//! subsystem (the static half lives in `svsim-analyzer`): every word of an
//! instrumented symmetric array carries two shadow cells — the last writer
//! and the *full set* of readers in the current barrier epoch — and every
//! ctx access is checked against them.
//!
//! Because all synchronization in this model is the global sense-reversing
//! barrier, each PE's vector clock collapses to a single component: the
//! number of barriers it has passed ([`crate::world::ShmemCtx::barrier_epoch`]).
//! Two accesses to the same word are concurrent exactly when they carry the
//! same epoch and different PEs; the shadow cells therefore store
//! epoch-tagged PE sets and conflicts are classified as write/write,
//! read/write, or atomic-mixed ([`ConflictKind`]). Atomic-vs-atomic
//! accesses are always allowed (that is what the atomics are for).
//!
//! Unlike the original `CheckedSym` prototype, the detector *accumulates*
//! [`RaceReport`]s instead of panicking, so fault-injected runs can
//! distinguish injected faults (typed `PeFailed` errors) from genuine
//! protocol violations (non-empty race reports).

use crate::shared::SharedU64Vec;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use svsim_types::{SvError, SvResult};

/// Width of the PE field in a shadow stamp: `stamp = (epoch + 1) *
/// PE_STRIDE + pe + 1`, with 0 reserved for "untouched".
pub const PE_STRIDE: u64 = 1 << 16;

/// Largest PE count the reader-set shadow cells can track exactly (two
/// 20-bit PE masks plus a 24-bit epoch tag share one `u64`).
pub const MAX_TRACKED_PES: usize = 20;

/// Reports kept verbatim per detector; beyond this only the total count
/// advances (a racy program produces unbounded duplicates otherwise).
const MAX_REPORTS: usize = 256;

/// Encode a `(barrier epoch, pe)` pair into a nonzero shadow stamp.
///
/// The all-zero stamp is reserved for "untouched", so both fields are
/// biased by one. The PE field holds `pe + 1` in `PE_STRIDE` values; a PE
/// rank of `PE_STRIDE - 1` or above would carry into the epoch field
/// (see [`decode_stamp`]), which is why detectors refuse worlds larger
/// than [`MAX_TRACKED_PES`].
#[inline]
#[must_use]
pub fn encode_stamp(epoch: u64, pe: usize) -> u64 {
    debug_assert!(
        (pe as u64) + 1 < PE_STRIDE,
        "PE rank {pe} overflows the stamp PE field"
    );
    (epoch + 1) * PE_STRIDE + pe as u64 + 1
}

/// Decode a shadow stamp back into `(barrier epoch, pe)`.
///
/// Returns `None` for the reserved untouched stamp (0) and for any stamp
/// whose PE field is 0 — the encoding a rank of `PE_STRIDE - 1` would
/// alias into. The original `CheckedSym::decode` underflowed
/// (`stamp % PE_STRIDE - 1`) on exactly these stamps.
#[inline]
#[must_use]
pub fn decode_stamp(stamp: u64) -> Option<(u64, usize)> {
    let pe_field = stamp % PE_STRIDE;
    if stamp == 0 || pe_field == 0 {
        return None;
    }
    Some((stamp / PE_STRIDE - 1, (pe_field - 1) as usize))
}

/// How two same-epoch accesses to one word conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictKind {
    /// Two plain writes from different PEs.
    WriteWrite,
    /// A plain write and a plain read from different PEs (either order).
    ReadWrite,
    /// An atomic access and a plain access from different PEs: the atomic
    /// side is ordered, the plain side is not, so the pair is still racy.
    AtomicMixed,
}

impl std::fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::WriteWrite => "write/write",
            Self::ReadWrite => "read/write",
            Self::AtomicMixed => "atomic-mixed",
        })
    }
}

/// One side of a detected conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceAccess {
    /// The accessing PE.
    pub pe: usize,
    /// Whether the access wrote the word.
    pub is_write: bool,
    /// Whether the access was atomic.
    pub atomic: bool,
}

impl std::fmt::Display for RaceAccess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PE {} {}{}",
            self.pe,
            if self.atomic { "atomic " } else { "" },
            if self.is_write { "write" } else { "read" }
        )
    }
}

/// One detected protocol violation: two same-epoch accesses to the same
/// symmetric-heap word from different PEs, at least one of them a
/// non-atomic write (or an atomic mixed with a plain access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceReport {
    /// Conflict classification.
    pub kind: ConflictKind,
    /// Allocation id of the symmetric array (assigned per detector, in
    /// shadow-creation order).
    pub array: u32,
    /// PE whose partition holds the conflicted word.
    pub owner_pe: usize,
    /// Word index within that partition.
    pub index: usize,
    /// Barrier epoch both accesses carried.
    pub epoch: u64,
    /// The earlier access (recovered from the shadow state).
    pub first: RaceAccess,
    /// The access that tripped the detector.
    pub second: RaceAccess,
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} conflict on word {}@PE{} of array #{}: {} vs {} in barrier epoch {}",
            self.kind, self.index, self.owner_pe, self.array, self.second, self.first, self.epoch
        )
    }
}

/// Shared accumulation sink: total count plus the first [`MAX_REPORTS`]
/// reports verbatim.
#[derive(Debug, Default)]
struct ReportSink {
    total: AtomicU64,
    reports: Mutex<Vec<RaceReport>>,
}

impl ReportSink {
    fn push(&self, r: RaceReport) {
        self.total.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut g) = self.reports.lock() {
            if g.len() < MAX_REPORTS {
                g.push(r);
            }
        }
    }
}

/// Epoch tag stored in the high 24 bits of a reader cell; always nonzero
/// so an all-zero cell means "untouched". Tags alias every `2^24 - 1`
/// epochs, which only matters for a word left untouched for exactly that
/// many barriers — accepted and documented.
#[inline]
fn epoch_tag(epoch: u64) -> u64 {
    (epoch % 0x00FF_FFFF) + 1
}

const READER_MASK: u64 = (1 << MAX_TRACKED_PES) - 1;

/// Per-allocation shadow state: one writer cell and one reader-set cell
/// per symmetric word, across all partitions.
///
/// Writer cell: `encode_stamp(epoch, pe) << 1 | atomic_flag`, 0 untouched.
/// Reader cell: bits 0..20 plain-reader PE mask, bits 20..40 atomic-reader
/// PE mask, bits 40..64 epoch tag.
#[derive(Debug)]
pub struct ShadowArray {
    array: u32,
    len_per_pe: usize,
    writes: SharedU64Vec,
    reads: SharedU64Vec,
    sink: Arc<ReportSink>,
}

impl ShadowArray {
    #[inline]
    fn word(&self, owner_pe: usize, idx: usize) -> usize {
        debug_assert!(idx < self.len_per_pe);
        owner_pe * self.len_per_pe + idx
    }

    fn report(
        &self,
        kind: ConflictKind,
        owner_pe: usize,
        idx: usize,
        epoch: u64,
        first: RaceAccess,
        second: RaceAccess,
    ) -> RaceReport {
        let r = RaceReport {
            kind,
            array: self.array,
            owner_pe,
            index: idx,
            epoch,
            first,
            second,
        };
        self.sink.push(r);
        r
    }

    /// Record a write of `owner_pe`'s word `idx` by PE `me` in `epoch`.
    /// Returns the first conflict this access produced, if any (all
    /// conflicts are accumulated in the detector regardless).
    pub fn record_write(
        &self,
        me: usize,
        epoch: u64,
        owner_pe: usize,
        idx: usize,
        atomic: bool,
    ) -> Option<RaceReport> {
        let w = self.word(owner_pe, idx);
        let mine = RaceAccess {
            pe: me,
            is_write: true,
            atomic,
        };
        let cell = encode_stamp(epoch, me) << 1 | u64::from(atomic);
        let prev = self.writes.swap(w, cell);
        let mut hit = None;
        if let Some((pepoch, ppe)) = decode_stamp(prev >> 1) {
            let patomic = prev & 1 != 0;
            if pepoch == epoch && ppe != me && !(patomic && atomic) {
                let kind = if patomic != atomic {
                    ConflictKind::AtomicMixed
                } else {
                    ConflictKind::WriteWrite
                };
                let first = RaceAccess {
                    pe: ppe,
                    is_write: true,
                    atomic: patomic,
                };
                hit = Some(self.report(kind, owner_pe, idx, epoch, first, mine));
            }
        }
        // A write also conflicts with every same-epoch reader on another
        // PE (full reader set — not the old single-reader approximation).
        let readers = self.reads.load(w);
        if readers >> 40 == epoch_tag(epoch) {
            let me_bit = 1u64 << me;
            let plain = readers & READER_MASK & !me_bit;
            let at = (readers >> MAX_TRACKED_PES) & READER_MASK & !me_bit;
            hit = self
                .flag_readers(plain, false, atomic, owner_pe, idx, epoch, mine)
                .or(hit);
            hit = self
                .flag_readers(at, true, atomic, owner_pe, idx, epoch, mine)
                .or(hit);
        }
        hit
    }

    /// Report conflicts between the write `mine` and each reader in `mask`.
    #[allow(clippy::too_many_arguments)]
    fn flag_readers(
        &self,
        mut mask: u64,
        readers_atomic: bool,
        write_atomic: bool,
        owner_pe: usize,
        idx: usize,
        epoch: u64,
        mine: RaceAccess,
    ) -> Option<RaceReport> {
        if readers_atomic && write_atomic {
            return None; // atomic-vs-atomic is always allowed
        }
        let kind = if readers_atomic != write_atomic {
            ConflictKind::AtomicMixed
        } else {
            ConflictKind::ReadWrite
        };
        let mut hit = None;
        while mask != 0 {
            let pe = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let first = RaceAccess {
                pe,
                is_write: false,
                atomic: readers_atomic,
            };
            let r = self.report(kind, owner_pe, idx, epoch, first, mine);
            hit.get_or_insert(r);
        }
        hit
    }

    /// Record a read of `owner_pe`'s word `idx` by PE `me` in `epoch`.
    pub fn record_read(
        &self,
        me: usize,
        epoch: u64,
        owner_pe: usize,
        idx: usize,
        atomic: bool,
    ) -> Option<RaceReport> {
        let w = self.word(owner_pe, idx);
        let tag = epoch_tag(epoch);
        let my_bit = 1u64 << (me + if atomic { MAX_TRACKED_PES } else { 0 });
        // Join the epoch's reader set (CAS loop: readers from many PEs
        // accumulate; a stale epoch's set is replaced wholesale).
        let cell = &self.reads.words()[w];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = if cur >> 40 == tag {
                cur | my_bit
            } else {
                (tag << 40) | my_bit
            };
            match cell.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        // Check against the epoch's last writer.
        let wr = self.writes.load(w);
        if let Some((wepoch, wpe)) = decode_stamp(wr >> 1) {
            let watomic = wr & 1 != 0;
            if wepoch == epoch && wpe != me && !(watomic && atomic) {
                let kind = if watomic != atomic {
                    ConflictKind::AtomicMixed
                } else {
                    ConflictKind::ReadWrite
                };
                let first = RaceAccess {
                    pe: wpe,
                    is_write: true,
                    atomic: watomic,
                };
                let mine = RaceAccess {
                    pe: me,
                    is_write: false,
                    atomic,
                };
                return Some(self.report(kind, owner_pe, idx, epoch, first, mine));
            }
        }
        None
    }

    /// Record an atomic read-modify-write (fetch-add, swap, CAS).
    pub fn record_atomic(
        &self,
        me: usize,
        epoch: u64,
        owner_pe: usize,
        idx: usize,
    ) -> Option<RaceReport> {
        let w = self.record_write(me, epoch, owner_pe, idx, true);
        let r = self.record_read(me, epoch, owner_pe, idx, true);
        w.or(r)
    }
}

/// The dynamic race detector: a factory for per-allocation shadow state
/// plus the shared report sink. One detector instruments one SPMD world
/// (see `launch_detected`); `CheckedSym` also creates standalone detectors
/// for opt-in per-array checking.
#[derive(Debug)]
pub struct RaceDetector {
    n_pes: usize,
    next_array: AtomicU32,
    sink: Arc<ReportSink>,
}

impl RaceDetector {
    /// Create a detector for an `n_pes`-PE world.
    ///
    /// # Errors
    /// [`SvError::InvalidConfig`] when `n_pes` exceeds
    /// [`MAX_TRACKED_PES`] (the reader-set shadow cells track at most
    /// that many PEs exactly).
    pub fn new(n_pes: usize) -> SvResult<Arc<Self>> {
        if n_pes == 0 || n_pes > MAX_TRACKED_PES {
            return Err(SvError::InvalidConfig(format!(
                "race detector supports 1..={MAX_TRACKED_PES} PEs, got {n_pes}"
            )));
        }
        Ok(Arc::new(Self {
            n_pes,
            next_array: AtomicU32::new(0),
            sink: Arc::new(ReportSink::default()),
        }))
    }

    /// World size this detector was created for.
    #[must_use]
    pub fn n_pes(&self) -> usize {
        self.n_pes
    }

    /// Create shadow state for one symmetric allocation of `len_per_pe`
    /// words per PE. Called once per allocation (by PE 0 at publication).
    #[must_use]
    pub fn shadow(&self, len_per_pe: usize) -> Arc<ShadowArray> {
        let total = self.n_pes * len_per_pe;
        Arc::new(ShadowArray {
            array: self.next_array.fetch_add(1, Ordering::Relaxed),
            len_per_pe,
            writes: SharedU64Vec::new(total, 0),
            reads: SharedU64Vec::new(total, 0),
            sink: Arc::clone(&self.sink),
        })
    }

    /// Total conflicts recorded (including any beyond the report cap).
    #[must_use]
    pub fn race_count(&self) -> u64 {
        self.sink.total.load(Ordering::Relaxed)
    }

    /// Snapshot of the accumulated reports (first [`MAX_REPORTS`] kept).
    #[must_use]
    pub fn reports(&self) -> Vec<RaceReport> {
        self.sink
            .reports
            .lock()
            .map(|g| g.clone())
            .unwrap_or_default()
    }

    /// Drain the accumulated reports and reset the count.
    #[must_use]
    pub fn take_reports(&self) -> Vec<RaceReport> {
        self.sink.total.store(0, Ordering::Relaxed);
        self.sink
            .reports
            .lock()
            .map(|mut g| std::mem::take(&mut *g))
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_roundtrip_and_untouched() {
        // Satellite hardening: the untouched stamp must decode to None
        // instead of underflowing `stamp % PE_STRIDE - 1`.
        assert_eq!(decode_stamp(0), None);
        for (epoch, pe) in [(0u64, 0usize), (1, 3), (41, 19), (1 << 30, 7)] {
            assert_eq!(decode_stamp(encode_stamp(epoch, pe)), Some((epoch, pe)));
        }
        // Largest encodable rank round-trips exactly.
        let max_pe = (PE_STRIDE - 2) as usize;
        assert_eq!(decode_stamp(encode_stamp(5, max_pe)), Some((5, max_pe)));
    }

    #[test]
    fn stamp_pe_overflow_is_rejected_not_misdecoded() {
        // A world of PE_STRIDE PEs would encode rank PE_STRIDE-1 as the
        // *next* epoch's reserved zero slot: `(e+1)*S + S = (e+2)*S`.
        // decode_stamp must refuse that stamp rather than invent epoch
        // e+1 / PE "-1"; detectors additionally refuse such worlds.
        let aliased = (5 + 1) * PE_STRIDE + (PE_STRIDE - 1) + 1;
        assert_eq!(aliased % PE_STRIDE, 0);
        assert_eq!(decode_stamp(aliased), None);
        assert!(RaceDetector::new(MAX_TRACKED_PES + 1).is_err());
        assert!(RaceDetector::new(0).is_err());
    }

    fn det2() -> (Arc<RaceDetector>, Arc<ShadowArray>) {
        let d = RaceDetector::new(4).unwrap();
        let s = d.shadow(8);
        (d, s)
    }

    #[test]
    fn disjoint_and_cross_epoch_accesses_are_clean() {
        let (d, s) = det2();
        assert!(s.record_write(0, 0, 0, 0, false).is_none());
        assert!(s.record_write(1, 0, 0, 1, false).is_none()); // other word
        assert!(s.record_write(1, 1, 0, 0, false).is_none()); // other epoch
        assert!(s.record_read(2, 2, 0, 0, false).is_none()); // after barrier
        assert!(s.record_read(3, 2, 0, 0, false).is_none()); // read/read ok
        assert_eq!(d.race_count(), 0);
    }

    #[test]
    fn write_write_same_epoch_is_flagged() {
        let (d, s) = det2();
        assert!(s.record_write(0, 3, 1, 5, false).is_none());
        let r = s.record_write(2, 3, 1, 5, false).expect("conflict");
        assert_eq!(r.kind, ConflictKind::WriteWrite);
        assert_eq!((r.first.pe, r.second.pe), (0, 2));
        assert_eq!((r.owner_pe, r.index, r.epoch), (1, 5, 3));
        assert_eq!(d.race_count(), 1);
    }

    #[test]
    fn full_reader_set_catches_what_single_reader_missed() {
        // The old single-reader shadow lost reader A once reader B (== the
        // later writer) overwrote the cell. The set-based cells keep both.
        let (d, s) = det2();
        assert!(s.record_read(0, 1, 0, 2, false).is_none()); // reader A
        assert!(s.record_read(1, 1, 0, 2, false).is_none()); // reader B
        let r = s.record_write(1, 1, 0, 2, false).expect("A vs B's write");
        assert_eq!(r.kind, ConflictKind::ReadWrite);
        assert_eq!(
            r.first,
            RaceAccess {
                pe: 0,
                is_write: false,
                atomic: false
            }
        );
        assert_eq!(r.second.pe, 1);
        assert_eq!(d.race_count(), 1);
    }

    #[test]
    fn read_after_write_and_write_after_read_are_flagged() {
        let (_, s) = det2();
        s.record_write(0, 0, 0, 0, false);
        let r = s.record_read(1, 0, 0, 0, false).expect("r after w");
        assert_eq!(r.kind, ConflictKind::ReadWrite);
        assert!(r.first.is_write && !r.second.is_write);

        s.record_read(2, 1, 3, 4, false);
        let r = s.record_write(3, 1, 3, 4, false).expect("w after r");
        assert_eq!(r.kind, ConflictKind::ReadWrite);
        assert_eq!((r.first.pe, r.second.pe), (2, 3));
    }

    #[test]
    fn atomic_vs_atomic_allowed_atomic_vs_plain_mixed() {
        let (d, s) = det2();
        assert!(s.record_atomic(0, 0, 0, 0).is_none());
        assert!(s.record_atomic(1, 0, 0, 0).is_none(), "atomic pair is fine");
        assert_eq!(d.race_count(), 0);
        let r = s.record_write(2, 0, 0, 0, false).expect("plain vs atomic");
        assert_eq!(r.kind, ConflictKind::AtomicMixed);
        // Fresh word: a plain read against an epoch's atomic writer.
        assert!(s.record_atomic(0, 0, 0, 1).is_none());
        let r = s
            .record_read(3, 0, 0, 1, false)
            .expect("plain read vs atomic");
        assert_eq!(r.kind, ConflictKind::AtomicMixed);
    }

    #[test]
    fn same_pe_rmw_never_conflicts_with_itself() {
        let (d, s) = det2();
        s.record_read(1, 0, 0, 0, false);
        assert!(s.record_write(1, 0, 0, 0, false).is_none());
        assert!(s.record_read(1, 0, 0, 0, false).is_none());
        assert_eq!(d.race_count(), 0);
    }

    #[test]
    fn reports_accumulate_and_drain() {
        let (d, s) = det2();
        for i in 0..3 {
            s.record_write(0, 0, 0, i, false);
            s.record_write(1, 0, 0, i, false);
        }
        assert_eq!(d.race_count(), 3);
        let all = d.reports();
        assert_eq!(all.len(), 3);
        assert_eq!(d.take_reports().len(), 3);
        assert_eq!(d.race_count(), 0);
        assert!(d.reports().is_empty());
    }
}
