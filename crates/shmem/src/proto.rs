//! Pure protocol state machines over an abstract word memory.
//!
//! The control-plane protocols of this crate — the sense-reversing
//! barrier, the respawn round handshake, the symmetric-heap allocation
//! publish/lookup, and the one-shot fault-word disarm — are hand-rolled
//! lock-free protocols over raw shared words. They run in two very
//! different hosts:
//!
//! - **Production**: over real atomics (struct fields for the thread
//!   backend, `memfd` arena words for the process backend), driven by
//!   spin/yield/timeout loops.
//! - **The model checker** (`crates/verify`): over a plain `Vec<u64>`
//!   model memory, driven by an exhaustive DFS scheduler that interleaves
//!   actors one shared-memory operation at a time and injects kills.
//!
//! To make the checked code *the* shipped code (not a copy that can
//! drift), each protocol is expressed here as a pure state machine:
//! every call to `step` performs **exactly one** shared-memory operation
//! through the [`ProtoMem`] trait and advances the actor's private phase.
//! The hosts differ only in how they instantiate `ProtoMem` and in the
//! waiting policy between `Pending` steps (spinning, heartbeats and
//! timeouts are driver concerns, not protocol state).
//!
//! The checker explores sequentially-consistent interleavings, which is
//! *stronger* than the release/acquire orderings production requests via
//! [`MemOrder`] — so a checker pass proves the protocol logic under SC,
//! while the ordering annotations (same-location coherence for the
//! barrier count, release/acquire pairs for every flag publication)
//! carry the argument down to the weaker real model. Both are documented
//! per transition below.

/// Memory-ordering request for one [`ProtoMem`] operation.
///
/// Production impls map these onto [`std::sync::atomic::Ordering`];
/// the model checker ignores them (it explores SC, a superset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOrder {
    /// No ordering beyond same-location coherence.
    Relaxed,
    /// Acquire load: see everything published before the matching release.
    Acquire,
    /// Release store: publish everything sequenced before it.
    Release,
    /// Both, for read-modify-write operations.
    AcqRel,
}

/// A word-addressed shared memory the protocol machines run against.
///
/// Slots are *logical* indices local to one protocol instance; each host
/// maps them onto its real storage (struct atomics, arena word offsets,
/// or a model vector). All operations are atomic at word granularity.
pub trait ProtoMem {
    /// Atomic load of `slot`.
    fn load(&self, slot: usize, order: MemOrder) -> u64;
    /// Atomic store of `v` into `slot`.
    fn store(&self, slot: usize, v: u64, order: MemOrder);
    /// Atomic fetch-add; returns the previous value.
    fn fetch_add(&self, slot: usize, delta: u64, order: MemOrder) -> u64;
    /// Atomic compare-exchange; `Ok(previous)` on success, `Err(actual)`
    /// on mismatch (failure ordering is the host's relaxed).
    fn compare_exchange(
        &self,
        slot: usize,
        current: u64,
        new: u64,
        order: MemOrder,
    ) -> Result<u64, u64>;

    /// Atomic fetch-or; returns the previous value. The default is a
    /// compare-exchange loop, which every host's single word supports;
    /// hosts with a native or may override.
    fn fetch_or(&self, slot: usize, bits: u64, order: MemOrder) -> u64 {
        loop {
            let cur = self.load(slot, MemOrder::Relaxed);
            match self.compare_exchange(slot, cur, cur | bits, order) {
                Ok(prev) => return prev,
                Err(_) => continue,
            }
        }
    }
}

/// A fixed-size bank of process-local atomic words implementing
/// [`ProtoMem`] — the thread backend's storage (and handy in tests).
#[derive(Debug)]
pub struct AtomicWords<const K: usize> {
    words: [std::sync::atomic::AtomicU64; K],
}

impl<const K: usize> Default for AtomicWords<K> {
    fn default() -> Self {
        Self {
            words: std::array::from_fn(|_| std::sync::atomic::AtomicU64::new(0)),
        }
    }
}

impl MemOrder {
    /// The [`std::sync::atomic::Ordering`] this request maps to on real
    /// atomics (for hosts implementing [`ProtoMem`] over them).
    #[inline]
    #[must_use]
    pub fn to_atomic(self) -> std::sync::atomic::Ordering {
        use std::sync::atomic::Ordering;
        match self {
            MemOrder::Relaxed => Ordering::Relaxed,
            MemOrder::Acquire => Ordering::Acquire,
            MemOrder::Release => Ordering::Release,
            MemOrder::AcqRel => Ordering::AcqRel,
        }
    }
}

impl<const K: usize> ProtoMem for AtomicWords<K> {
    #[inline]
    fn load(&self, slot: usize, order: MemOrder) -> u64 {
        self.words[slot].load(order.to_atomic())
    }

    #[inline]
    fn store(&self, slot: usize, v: u64, order: MemOrder) {
        self.words[slot].store(v, order.to_atomic());
    }

    #[inline]
    fn fetch_add(&self, slot: usize, delta: u64, order: MemOrder) -> u64 {
        self.words[slot].fetch_add(delta, order.to_atomic())
    }

    #[inline]
    fn compare_exchange(
        &self,
        slot: usize,
        current: u64,
        new: u64,
        order: MemOrder,
    ) -> Result<u64, u64> {
        self.words[slot].compare_exchange(
            current,
            new,
            order.to_atomic(),
            std::sync::atomic::Ordering::Relaxed,
        )
    }
}

// ---------------------------------------------------------------------------
// Sense-reversing barrier.
// ---------------------------------------------------------------------------

/// The barrier protocol's state machine. Slot layout: [`BAR_COUNT`],
/// [`BAR_SENSE`], [`BAR_POISON`].
///
/// The sense word carries *both* the epoch sense ([`SENSE_BIT`]) and the
/// poison flag ([`POISON_BIT`]). Keeping them in one atomic word totally
/// orders every release against every poison: a release is a
/// compare-exchange that fails if poison landed first, a poison is a
/// fetch-or that a released epoch survives, and a waiter's single load
/// decides released-vs-poisoned with no window in between. The checker
/// proved the previous two-word layout wrong three ways (split-epoch
/// failures from blind timeouts, from the timeout re-check, and from a
/// reap racing a full epoch's release); all three are impossible on one
/// word.
pub mod bar {
    use super::{MemOrder, ProtoMem};

    /// Arrival counter slot.
    pub const BAR_COUNT: usize = 0;
    /// Combined sense + poison slot; see [`SENSE_BIT`] and [`POISON_BIT`].
    pub const BAR_SENSE: usize = 1;
    /// Legacy poison slot. The machine no longer touches it (poison lives
    /// in [`BAR_SENSE`]'s [`POISON_BIT`]); the slot is kept so arena
    /// layouts and reset paths stay stable.
    pub const BAR_POISON: usize = 2;
    /// Number of slots the barrier protocol uses.
    pub const BAR_WORDS: usize = 3;

    /// Epoch sense bit of the [`BAR_SENSE`] word (flips each epoch).
    pub const SENSE_BIT: u64 = 1;
    /// Poison bit of the [`BAR_SENSE`] word (set once a peer failed).
    pub const POISON_BIT: u64 = 2;

    /// The barrier protocol over `n` participants.
    #[derive(Debug, Clone)]
    pub struct BarrierSm {
        /// Number of participants.
        pub n: u64,
        /// Whether the timeout path re-checks the sense before poisoning.
        ///
        /// `true` makes the expiry a single decisive compare-exchange:
        /// poison the epoch only if it is still unflipped and clean, and
        /// otherwise report what actually happened (release or a peer's
        /// poison) — so a completed epoch can never be failed
        /// retroactively by a slow clock. `false` reproduces the
        /// historical behavior (blind poison on expiry), kept so the
        /// model checker can demonstrate the race it fixes.
        pub timeout_recheck: bool,
    }

    /// Where one participant is inside the current epoch.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum Phase {
        /// About to load the sense word's poison bit (epoch entry).
        CheckPoison,
        /// About to fetch-add the arrival counter.
        Arrive,
        /// Last arriver: about to reset the counter.
        ResetCount,
        /// Last arriver: about to flip the sense (the release) with a
        /// compare-exchange that fails iff poison landed first.
        ReleaseSense,
        /// Waiter: about to poll the sense word — one load decides
        /// released vs poisoned vs still waiting.
        PollSense,
        /// Driver-requested timeout; about to decide the epoch's fate
        /// with one compare-exchange (only reachable with
        /// `timeout_recheck`).
        TimeoutRecheck,
        /// About to blindly set the poison bit and report the timeout
        /// (the historical `timeout_recheck: false` path).
        PoisonTimeout,
    }

    /// One participant's private barrier state.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct Actor {
        sense: bool,
        phase: Phase,
    }

    /// Result of one protocol step.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum Step {
        /// Not done; step again (the driver may spin/yield/heartbeat
        /// when [`Actor::is_waiting`]).
        Pending,
        /// The epoch released; the actor's sense has flipped.
        Released,
        /// A peer poisoned the barrier before this epoch released.
        Poisoned,
        /// The driver-requested bounded wait expired; this actor poisoned
        /// the barrier on the way out.
        TimedOut,
    }

    impl Actor {
        /// Fresh participant with the given starting sense.
        #[must_use]
        pub fn new(sense: bool) -> Self {
            Self {
                sense,
                phase: Phase::CheckPoison,
            }
        }

        /// Current sense (flips on every released epoch).
        #[must_use]
        pub fn sense(&self) -> bool {
            self.sense
        }

        /// Current phase (exposed for checker state hashing).
        #[must_use]
        pub fn phase(&self) -> Phase {
            self.phase
        }

        /// True while parked in the waiter poll loop — the only phase
        /// where a driver may spin, yield, bump heartbeats, or request a
        /// timeout between steps.
        #[must_use]
        pub fn is_waiting(&self) -> bool {
            matches!(self.phase, Phase::PollSense)
        }
    }

    impl BarrierSm {
        /// Advance `a` by exactly one shared-memory operation.
        pub fn step(&self, a: &mut Actor, mem: &impl ProtoMem) -> Step {
            let cur_w = u64::from(a.sense);
            let next_w = u64::from(!a.sense);
            match a.phase {
                Phase::CheckPoison => {
                    // Acquire pairs with the failing peer's poison or-in.
                    if mem.load(BAR_SENSE, MemOrder::Acquire) & POISON_BIT != 0 {
                        return Step::Poisoned;
                    }
                    a.phase = Phase::Arrive;
                    Step::Pending
                }
                Phase::Arrive => {
                    // AcqRel: arrivals are ordered against each other and
                    // against the previous epoch's reset (same location).
                    if mem.fetch_add(BAR_COUNT, 1, MemOrder::AcqRel) + 1 == self.n {
                        a.phase = Phase::ResetCount;
                    } else {
                        a.phase = Phase::PollSense;
                    }
                    Step::Pending
                }
                Phase::ResetCount => {
                    // Relaxed is enough: the release CAS of the sense
                    // below publishes this reset to every waiter (their
                    // next-epoch fetch_add is same-location ordered after
                    // their acquire of the sense).
                    mem.store(BAR_COUNT, 0, MemOrder::Relaxed);
                    a.phase = Phase::ReleaseSense;
                    Step::Pending
                }
                Phase::ReleaseSense => {
                    // Only the clean, unflipped word releases; the single
                    // failure cause is poison landing first, in which case
                    // this epoch failed before it completed — consistently
                    // for every participant, because both outcomes are
                    // writes to one location.
                    match mem.compare_exchange(BAR_SENSE, cur_w, next_w, MemOrder::AcqRel) {
                        Ok(_) => {
                            a.sense = !a.sense;
                            a.phase = Phase::CheckPoison;
                            Step::Released
                        }
                        Err(_) => Step::Poisoned,
                    }
                }
                Phase::PollSense => {
                    // One load decides. A flipped sense means the epoch
                    // completed — even if poison arrived after the flip
                    // (released-epoch rule; the next epoch's entry check
                    // reports the failure instead).
                    let w = mem.load(BAR_SENSE, MemOrder::Acquire);
                    if w & SENSE_BIT == next_w {
                        a.sense = !a.sense;
                        a.phase = Phase::CheckPoison;
                        return Step::Released;
                    }
                    if w & POISON_BIT != 0 {
                        return Step::Poisoned;
                    }
                    Step::Pending
                }
                Phase::TimeoutRecheck => {
                    // The decisive expiry: poison the epoch only if it is
                    // still unflipped and clean. A failed exchange tells
                    // us what happened instead — the epoch released (report
                    // the release, never fail a completed epoch) or a peer
                    // poisoned it first.
                    match mem.compare_exchange(
                        BAR_SENSE,
                        cur_w,
                        cur_w | POISON_BIT,
                        MemOrder::AcqRel,
                    ) {
                        Ok(_) => Step::TimedOut,
                        Err(actual) if actual & SENSE_BIT == next_w => {
                            a.sense = !a.sense;
                            a.phase = Phase::CheckPoison;
                            Step::Released
                        }
                        Err(_) => Step::Poisoned,
                    }
                }
                Phase::PoisonTimeout => {
                    // Historical blind expiry: set the poison bit without
                    // looking, so a release that already happened gets a
                    // timeout reported against it anyway. Kept only so the
                    // checker can reproduce the split-epoch race that
                    // `timeout_recheck: true` closes.
                    mem.fetch_or(BAR_SENSE, POISON_BIT, MemOrder::AcqRel);
                    Step::TimedOut
                }
            }
        }

        /// The driver's bounded wait expired: redirect a waiting actor
        /// onto the timeout path. Returns `false` (no-op) unless the
        /// actor is in a waiting phase.
        pub fn request_timeout(&self, a: &mut Actor) -> bool {
            if !a.is_waiting() {
                return false;
            }
            a.phase = if self.timeout_recheck {
                Phase::TimeoutRecheck
            } else {
                Phase::PoisonTimeout
            };
            true
        }
    }

    /// Poison the barrier from outside the protocol — the launcher's
    /// reap path and a panicking PE's unwind both publish the failure
    /// through this single helper. An or-in rather than a store: it
    /// must not clobber a release it lost the race to (the flipped
    /// sense survives, so the failure lands on the next epoch).
    pub fn post_poison(mem: &impl ProtoMem) {
        mem.fetch_or(BAR_SENSE, POISON_BIT, MemOrder::AcqRel);
    }

    /// True once the barrier is poisoned (current or pending epoch).
    pub fn is_poisoned(mem: &impl ProtoMem) -> bool {
        mem.load(BAR_SENSE, MemOrder::Acquire) & POISON_BIT != 0
    }
}

// ---------------------------------------------------------------------------
// Respawn round handshake.
// ---------------------------------------------------------------------------

/// The respawn round protocol: parked survivors acknowledge a wrecked
/// round and wait for the supervisor to either release the next round
/// (re-run) or abort (publish as-is). Slot layout: [`ROUND`], [`ABORT`],
/// then one ack slot per PE at [`ACK_BASE`]` + pe`; the barrier words the
/// supervisor resets live at [`RB_COUNT`]/[`RB_SENSE`]/[`RB_POISON`].
pub mod round {
    use super::{MemOrder, ProtoMem};

    /// Round generation counter slot.
    pub const ROUND: usize = 0;
    /// Abort flag slot (sticky; only ever set under a poisoned barrier).
    pub const ABORT: usize = 1;
    /// Barrier count slot as seen by the supervisor's reset.
    pub const RB_COUNT: usize = 2;
    /// Barrier sense slot as seen by the supervisor's reset.
    pub const RB_SENSE: usize = 3;
    /// Barrier poison slot as seen by the supervisor's reset.
    pub const RB_POISON: usize = 4;
    /// First ack slot; survivor `pe` acks at `ACK_BASE + pe`.
    pub const ACK_BASE: usize = 5;

    /// Phases of a parked survivor (the child-side park loop).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum SurvivorPhase {
        /// About to publish the ack for the wrecked round.
        Ack,
        /// About to poll the round counter.
        LoadRound,
        /// Round unchanged; about to poll the abort flag.
        LoadAbort,
        /// Saw the abort flag; about to confirm it (the historical
        /// double-check before publishing).
        ConfirmAbort,
        /// Abort confirmed; about to confirm the round is still ours.
        ConfirmRound,
    }

    /// One parked survivor's private state.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct Survivor {
        /// The round this survivor parked in.
        pub parked: u64,
        /// Which ack slot is ours.
        pub ack_slot: usize,
        phase: SurvivorPhase,
    }

    /// Result of one survivor step.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum SurvivorStep {
        /// Not decided; step again (the driver sleeps and bumps its
        /// heartbeat while [`Survivor::is_waiting`]).
        Pending,
        /// The supervisor released this round: re-run the body against
        /// the reset arena, parked at the new round.
        Released(u64),
        /// The supervisor aborted while the round is still ours: publish
        /// the wrecked round's result as-is.
        Publish,
        /// Abort and a newer round raced: re-run the body *without*
        /// updating the parked round — the re-run hits the (sticky)
        /// poisoned barrier and converges to `Publish` on the next park.
        ReRunStale,
    }

    impl Survivor {
        /// Park in round `parked`, acking at `ACK_BASE + pe`.
        #[must_use]
        pub fn new(parked: u64, pe: usize) -> Self {
            Self {
                parked,
                ack_slot: ACK_BASE + pe,
                phase: SurvivorPhase::Ack,
            }
        }

        /// Current phase (exposed for checker state hashing).
        #[must_use]
        pub fn phase(&self) -> SurvivorPhase {
            self.phase
        }

        /// True while polling for a release/abort — where the driver
        /// sleeps between steps.
        #[must_use]
        pub fn is_waiting(&self) -> bool {
            matches!(
                self.phase,
                SurvivorPhase::LoadRound | SurvivorPhase::LoadAbort
            )
        }

        /// Advance by exactly one shared-memory operation.
        pub fn step(&mut self, mem: &impl ProtoMem) -> SurvivorStep {
            match self.phase {
                SurvivorPhase::Ack => {
                    // Release: the supervisor's acquire of this ack also
                    // sees every arena write the survivor made this round.
                    mem.store(self.ack_slot, self.parked + 1, MemOrder::Release);
                    self.phase = SurvivorPhase::LoadRound;
                    SurvivorStep::Pending
                }
                SurvivorPhase::LoadRound => {
                    // Acquire pairs with the supervisor's release bump, so
                    // a released survivor sees the whole arena reset.
                    let r = mem.load(ROUND, MemOrder::Acquire);
                    if r > self.parked {
                        self.parked = r;
                        SurvivorStep::Released(r)
                    } else {
                        self.phase = SurvivorPhase::LoadAbort;
                        SurvivorStep::Pending
                    }
                }
                SurvivorPhase::LoadAbort => {
                    if mem.load(ABORT, MemOrder::Acquire) == 0 {
                        self.phase = SurvivorPhase::LoadRound;
                    } else {
                        self.phase = SurvivorPhase::ConfirmAbort;
                    }
                    SurvivorStep::Pending
                }
                SurvivorPhase::ConfirmAbort => {
                    if mem.load(ABORT, MemOrder::Acquire) == 0 {
                        // Unreachable with today's sticky abort flag, but
                        // the historical re-check is part of the protocol:
                        // a non-abort here re-runs the body.
                        SurvivorStep::ReRunStale
                    } else {
                        self.phase = SurvivorPhase::ConfirmRound;
                        SurvivorStep::Pending
                    }
                }
                SurvivorPhase::ConfirmRound => {
                    if mem.load(ROUND, MemOrder::Acquire) == self.parked {
                        SurvivorStep::Publish
                    } else {
                        // Abort raced with a release we missed: re-run; the
                        // poisoned barrier (abort implies poison) bounces
                        // the body straight back to publishing.
                        SurvivorStep::ReRunStale
                    }
                }
            }
        }
    }

    /// Phases of the supervisor's release attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum ReleasePhase {
        /// About to read survivor `i`'s ack slot.
        CheckAck(usize),
        /// All survivors parked: about to reset the barrier count.
        ResetCount,
        /// About to reset the barrier sense.
        ResetSense,
        /// About to clear the barrier poison.
        ResetPoison,
        /// About to bump the round counter (the release itself).
        Bump,
    }

    /// The supervisor side of one release attempt over a fixed survivor
    /// set. Non-protocol arena resets (heap bump, allocation tables,
    /// epochs, result slots) are the driver's job and must complete
    /// *before* stepping past [`ReleasePhase::CheckAck`]; the machine
    /// owns the ordering that matters — barrier words reset before the
    /// round bump that releases survivors.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    pub struct Release {
        /// Ack slots of the surviving PEs (already-reaped victims have
        /// no say).
        pub survivor_acks: Vec<usize>,
        /// The wrecked round being retired; survivors must have acked
        /// `round + 1`.
        pub round: u64,
        phase: ReleasePhase,
    }

    /// Result of one supervisor release step.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum ReleaseStep {
        /// Not decided; step again.
        Pending,
        /// Some survivor has not acked the wrecked round yet: give up on
        /// this attempt (the supervisor retries on its next tick).
        NotParked,
        /// Barrier reset and round bumped: survivors are released.
        Released,
    }

    impl Release {
        /// A release attempt for `round` over the given survivor acks.
        #[must_use]
        pub fn new(survivor_acks: Vec<usize>, round: u64) -> Self {
            Self {
                survivor_acks,
                round,
                phase: ReleasePhase::CheckAck(0),
            }
        }

        /// Current phase (exposed for checker state hashing).
        #[must_use]
        pub fn phase(&self) -> ReleasePhase {
            self.phase
        }

        /// Advance by exactly one shared-memory operation.
        pub fn step(&mut self, mem: &impl ProtoMem) -> ReleaseStep {
            match self.phase {
                ReleasePhase::CheckAck(i) => match self.survivor_acks.get(i) {
                    Some(&slot) => {
                        if mem.load(slot, MemOrder::Acquire) != self.round + 1 {
                            return ReleaseStep::NotParked;
                        }
                        self.phase = ReleasePhase::CheckAck(i + 1);
                        ReleaseStep::Pending
                    }
                    None => {
                        self.phase = ReleasePhase::ResetCount;
                        ReleaseStep::Pending
                    }
                },
                ReleasePhase::ResetCount => {
                    mem.store(RB_COUNT, 0, MemOrder::Relaxed);
                    self.phase = ReleasePhase::ResetSense;
                    ReleaseStep::Pending
                }
                ReleasePhase::ResetSense => {
                    mem.store(RB_SENSE, 0, MemOrder::Relaxed);
                    self.phase = ReleasePhase::ResetPoison;
                    ReleaseStep::Pending
                }
                ReleasePhase::ResetPoison => {
                    mem.store(RB_POISON, 0, MemOrder::Relaxed);
                    self.phase = ReleasePhase::Bump;
                    ReleaseStep::Pending
                }
                ReleasePhase::Bump => {
                    // Release: survivors' acquire of the bumped round sees
                    // every reset above (and the driver's table resets,
                    // which are sequenced before this machine ran).
                    let r = mem.load(ROUND, MemOrder::Acquire);
                    mem.store(ROUND, r + 1, MemOrder::Release);
                    ReleaseStep::Released
                }
            }
        }
    }

    /// The supervisor abandons respawn: set the sticky abort flag,
    /// releasing parked survivors into publishing their wrecked-round
    /// results. Only ever posted under a poisoned barrier (abort implies
    /// poison), which [`Survivor::step`]'s `ReRunStale` path relies on.
    pub fn post_abort(mem: &impl ProtoMem) {
        mem.store(ABORT, 1, MemOrder::Release);
    }
}

// ---------------------------------------------------------------------------
// Symmetric-heap allocation publish/lookup.
// ---------------------------------------------------------------------------

/// The heap-lock protocol: PE 0 bump-allocates and publishes an
/// allocation table entry; peers resolve it after the collective barrier.
/// Slot layout: [`BUMP`], [`LEN`], [`OFF`], [`READY`].
pub mod alloc {
    use super::{MemOrder, ProtoMem};

    /// Heap bump-pointer slot (words used so far).
    pub const BUMP: usize = 0;
    /// Published per-PE length slot of this entry.
    pub const LEN: usize = 1;
    /// Published word-offset slot of this entry.
    pub const OFF: usize = 2;
    /// Ready flag slot: 1 once the entry is fully published.
    pub const READY: usize = 3;
    /// Number of slots the allocation protocol uses per entry.
    pub const ALLOC_WORDS: usize = 4;

    /// Phases of PE 0's publish.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum PublishPhase {
        /// About to read the bump pointer.
        LoadBump,
        /// About to advance the bump pointer.
        StoreBump,
        /// About to publish the entry length.
        StoreLen,
        /// About to publish the entry offset.
        StoreOff,
        /// About to set the ready flag (the publication).
        StoreReady,
    }

    /// PE 0's publish of one allocation entry.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct Publish {
        /// Words needed (`len_per_pe * n_pes`).
        pub need: u64,
        /// Heap capacity in words.
        pub cap: u64,
        /// Per-PE length to publish.
        pub len_per_pe: u64,
        /// Word offset of the heap region (published offsets are
        /// heap-base-relative plus this).
        pub heap_base: u64,
        used: u64,
        phase: PublishPhase,
    }

    /// Result of one publish step.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum PublishStep {
        /// Not done; step again.
        Pending,
        /// Entry fully published at this word offset.
        Published(u64),
        /// The heap cannot hold the request (`used + need > cap`).
        Exhausted {
            /// Words already allocated before this request.
            used: u64,
        },
    }

    impl Publish {
        /// Publish `need = len_per_pe * n_pes` words against `cap`.
        #[must_use]
        pub fn new(need: u64, cap: u64, len_per_pe: u64, heap_base: u64) -> Self {
            Self {
                need,
                cap,
                len_per_pe,
                heap_base,
                used: 0,
                phase: PublishPhase::LoadBump,
            }
        }

        /// Current phase (exposed for checker state hashing).
        #[must_use]
        pub fn phase(&self) -> PublishPhase {
            self.phase
        }

        /// Advance by exactly one shared-memory operation.
        pub fn step(&mut self, mem: &impl ProtoMem) -> PublishStep {
            match self.phase {
                PublishPhase::LoadBump => {
                    // Relaxed: only PE 0 ever touches the bump pointer,
                    // and always between barriers.
                    self.used = mem.load(BUMP, MemOrder::Relaxed);
                    if self.used + self.need > self.cap {
                        return PublishStep::Exhausted { used: self.used };
                    }
                    self.phase = PublishPhase::StoreBump;
                    PublishStep::Pending
                }
                PublishPhase::StoreBump => {
                    mem.store(BUMP, self.used + self.need, MemOrder::Relaxed);
                    self.phase = PublishPhase::StoreLen;
                    PublishStep::Pending
                }
                PublishPhase::StoreLen => {
                    mem.store(LEN, self.len_per_pe, MemOrder::Relaxed);
                    self.phase = PublishPhase::StoreOff;
                    PublishStep::Pending
                }
                PublishPhase::StoreOff => {
                    mem.store(OFF, self.heap_base + self.used, MemOrder::Relaxed);
                    self.phase = PublishPhase::StoreReady;
                    PublishStep::Pending
                }
                PublishPhase::StoreReady => {
                    // Release: a peer's acquire of the ready flag sees the
                    // len/off stores above — the entry is never observed
                    // half-published.
                    mem.store(READY, 1, MemOrder::Release);
                    PublishStep::Published(self.heap_base + self.used)
                }
            }
        }
    }

    /// Phases of a peer's lookup.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum LookupPhase {
        /// About to read the ready flag.
        LoadReady,
        /// About to read the published length.
        LoadLen,
        /// About to read the published offset.
        LoadOff,
    }

    /// A peer's resolution of one allocation entry (after the barrier).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct Lookup {
        /// Per-PE length the caller expects.
        pub len_per_pe: u64,
        phase: LookupPhase,
    }

    /// Result of one lookup step.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum LookupStep {
        /// Not done; step again.
        Pending,
        /// Entry resolved at this word offset.
        Resolved(u64),
        /// The ready flag was never set (collective call order violated,
        /// or the publisher died before publishing).
        NotPublished,
        /// The published length differs from the caller's expectation.
        Mismatch {
            /// The length actually published.
            published: u64,
        },
    }

    impl Lookup {
        /// Resolve an entry expected to hold `len_per_pe` words per PE.
        #[must_use]
        pub fn new(len_per_pe: u64) -> Self {
            Self {
                len_per_pe,
                phase: LookupPhase::LoadReady,
            }
        }

        /// Current phase (exposed for checker state hashing).
        #[must_use]
        pub fn phase(&self) -> LookupPhase {
            self.phase
        }

        /// Advance by exactly one shared-memory operation.
        pub fn step(&mut self, mem: &impl ProtoMem) -> LookupStep {
            match self.phase {
                LookupPhase::LoadReady => {
                    // Acquire pairs with the publisher's release of READY.
                    if mem.load(READY, MemOrder::Acquire) != 1 {
                        return LookupStep::NotPublished;
                    }
                    self.phase = LookupPhase::LoadLen;
                    LookupStep::Pending
                }
                LookupPhase::LoadLen => {
                    let published = mem.load(LEN, MemOrder::Relaxed);
                    if published != self.len_per_pe {
                        return LookupStep::Mismatch { published };
                    }
                    self.phase = LookupPhase::LoadOff;
                    LookupStep::Pending
                }
                LookupPhase::LoadOff => LookupStep::Resolved(mem.load(OFF, MemOrder::Relaxed)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// One-shot fault-word disarm.
// ---------------------------------------------------------------------------

/// The fault-injection counter protocol: every PE counts a matching op
/// against the same shared words; the `at`-th hit races a one-shot CAS
/// disarm so a wildcard fault fires exactly once world-wide. Slot
/// layout: [`SEEN`], [`ARMED`].
pub mod fault {
    use super::{MemOrder, ProtoMem};

    /// Matching-op counter slot.
    pub const SEEN: usize = 0;
    /// Armed flag slot (1 while the fault can still fire).
    pub const ARMED: usize = 1;
    /// Number of slots the fault protocol uses per spec.
    pub const FAULT_WORDS: usize = 2;

    /// Phases of one fault check.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum Phase {
        /// About to read the armed flag.
        LoadArmed,
        /// About to count this op.
        CountOp,
        /// Threshold reached: about to race the one-shot disarm.
        Disarm,
    }

    /// One PE's check of one fault spec.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct Check {
        /// Fire once the counter reaches this value.
        pub at: u64,
        phase: Phase,
    }

    /// Result of one fault-check step.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum Step {
        /// Not done; step again.
        Pending,
        /// Spec already disarmed — nothing to do.
        Skip,
        /// Op counted below the threshold — no fire.
        Counted,
        /// Won the disarm race: this PE fires the fault action.
        Fired,
        /// Reached the threshold but another PE won the disarm.
        Lost,
    }

    impl Check {
        /// Check one op against a spec firing at `at`.
        #[must_use]
        pub fn new(at: u64) -> Self {
            Self {
                at,
                phase: Phase::LoadArmed,
            }
        }

        /// Current phase (exposed for checker state hashing).
        #[must_use]
        pub fn phase(&self) -> Phase {
            self.phase
        }

        /// Advance by exactly one shared-memory operation.
        pub fn step(&mut self, mem: &impl ProtoMem) -> Step {
            match self.phase {
                Phase::LoadArmed => {
                    if mem.load(ARMED, MemOrder::Acquire) == 0 {
                        return Step::Skip;
                    }
                    self.phase = Phase::CountOp;
                    Step::Pending
                }
                Phase::CountOp => {
                    let n = mem.fetch_add(SEEN, 1, MemOrder::AcqRel) + 1;
                    if n < self.at {
                        return Step::Counted;
                    }
                    self.phase = Phase::Disarm;
                    Step::Pending
                }
                Phase::Disarm => {
                    // The CAS is what makes a wildcard fault fire exactly
                    // once: every PE at/past the threshold races it, one
                    // wins.
                    if mem.compare_exchange(ARMED, 1, 0, MemOrder::AcqRel).is_ok() {
                        Step::Fired
                    } else {
                        Step::Lost
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::bar::{Actor, BarrierSm, Step};
    use super::*;

    /// Drive `n` actors round-robin to completion over one memory.
    fn run_barrier(n: usize, epochs: usize) {
        let mem = AtomicWords::<3>::default();
        let sm = BarrierSm {
            n: n as u64,
            timeout_recheck: true,
        };
        let mut actors: Vec<Actor> = (0..n).map(|_| Actor::new(false)).collect();
        for _ in 0..epochs {
            let mut released = vec![false; n];
            while released.iter().any(|&r| !r) {
                for (i, a) in actors.iter_mut().enumerate() {
                    if released[i] {
                        continue;
                    }
                    match sm.step(a, &mem) {
                        Step::Released => released[i] = true,
                        Step::Pending => {}
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn barrier_round_robin_epochs() {
        run_barrier(1, 4);
        run_barrier(2, 4);
        run_barrier(5, 3);
    }

    #[test]
    fn barrier_poison_observed_at_entry() {
        let mem = AtomicWords::<3>::default();
        let sm = BarrierSm {
            n: 2,
            timeout_recheck: true,
        };
        bar::post_poison(&mem);
        let mut a = Actor::new(false);
        assert_eq!(sm.step(&mut a, &mem), Step::Poisoned);
    }

    #[test]
    fn timeout_recheck_sees_late_release() {
        // A waiter whose clock expired just as the epoch released must
        // report the release, not a timeout.
        let mem = AtomicWords::<3>::default();
        let sm = BarrierSm {
            n: 2,
            timeout_recheck: true,
        };
        let mut w = Actor::new(false);
        assert_eq!(sm.step(&mut w, &mem), Step::Pending); // poison check
        assert_eq!(sm.step(&mut w, &mem), Step::Pending); // arrive
        assert!(w.is_waiting());
        // Peer arrives and releases the epoch.
        let mut p = Actor::new(false);
        while sm.step(&mut p, &mem) != Step::Released {}
        // Now the waiter's bounded wait "expires".
        assert!(sm.request_timeout(&mut w));
        assert_eq!(sm.step(&mut w, &mem), Step::Released);
        assert!(!bar::is_poisoned(&mem));
    }

    #[test]
    fn timeout_without_release_poisons() {
        let mem = AtomicWords::<3>::default();
        let sm = BarrierSm {
            n: 2,
            timeout_recheck: true,
        };
        let mut w = Actor::new(false);
        assert_eq!(sm.step(&mut w, &mem), Step::Pending);
        assert_eq!(sm.step(&mut w, &mem), Step::Pending);
        assert!(sm.request_timeout(&mut w));
        // One decisive exchange: unflipped and clean, so poison + report.
        assert_eq!(sm.step(&mut w, &mem), Step::TimedOut);
        assert!(bar::is_poisoned(&mem));
    }

    #[test]
    fn alloc_publish_then_lookup() {
        let mem = AtomicWords::<4>::default();
        let mut p = alloc::Publish::new(8, 64, 4, 100);
        let off = loop {
            match p.step(&mem) {
                alloc::PublishStep::Pending => {}
                alloc::PublishStep::Published(off) => break off,
                other => panic!("unexpected {other:?}"),
            }
        };
        assert_eq!(off, 100);
        let mut l = alloc::Lookup::new(4);
        let resolved = loop {
            match l.step(&mem) {
                alloc::LookupStep::Pending => {}
                alloc::LookupStep::Resolved(off) => break off,
                other => panic!("unexpected {other:?}"),
            }
        };
        assert_eq!(resolved, 100);
        // Second publish bumps past the first.
        let mut p2 = alloc::Publish::new(8, 64, 4, 100);
        loop {
            match p2.step(&mem) {
                alloc::PublishStep::Pending => {}
                alloc::PublishStep::Published(off) => {
                    assert_eq!(off, 108);
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn alloc_exhaustion_reports_used() {
        let mem = AtomicWords::<4>::default();
        mem.store(alloc::BUMP, 60, MemOrder::Relaxed);
        let mut p = alloc::Publish::new(8, 64, 4, 100);
        assert_eq!(p.step(&mem), alloc::PublishStep::Exhausted { used: 60 });
    }

    #[test]
    fn fault_one_shot_fires_once() {
        let mem = AtomicWords::<2>::default();
        mem.store(fault::ARMED, 1, MemOrder::Release);
        let mut fired = 0;
        for _ in 0..5 {
            let mut c = fault::Check::new(3);
            loop {
                match c.step(&mem) {
                    fault::Step::Pending => {}
                    fault::Step::Fired => {
                        fired += 1;
                        break;
                    }
                    _ => break,
                }
            }
        }
        assert_eq!(fired, 1, "one-shot fault must fire exactly once");
    }
}
