//! In-process PGAS/SHMEM runtime — the communication substrate of the
//! SV-Sim reproduction.
//!
//! The paper's scale-out design (§3.2.3) runs one SHMEM process per device,
//! partitions the state vector across the symmetric heap, and exchanges
//! amplitudes with fine-grained one-sided `put`/`get` initiated from inside
//! the compute kernel. No SHMEM fabric (NVSHMEM, OpenSHMEM, ROC_SHMEM) is
//! available in this environment, so this crate rebuilds the model with
//! threads as PEs:
//!
//! - [`world::launch`] starts an SPMD job; each PE receives a
//!   [`world::ShmemCtx`].
//! - [`world::ShmemCtx::malloc_f64`] is the collective symmetric allocation
//!   (`nvshmem_malloc`).
//! - `get_f64`/`put_f64` are `nvshmem_double_g`/`nvshmem_double_p`;
//!   slice variants model `shmem_getmem`/`putmem`; atomics and
//!   reductions/broadcasts complete the API surface the simulator needs.
//! - [`world::ShmemCtx::barrier_all`] is `shmem_barrier_all`, built on a
//!   sense-reversing atomic barrier ([`barrier`]).
//! - Every access is classified local/remote and counted ([`metrics`]);
//!   the traffic profile drives the interconnect performance model in
//!   `svsim-perfmodel`.
//! - Failure is a first-class code path: [`fault::FaultPlan`] injects
//!   deterministic PE kills, dropped/delayed transfers and poisoned
//!   barriers; [`world::launch_with_faults`] reports per-PE `Result`s (no
//!   resume-unwinding), and every PE death surfaces as a typed
//!   `SvError::PeFailed` while peers observe the poisoned barrier and shut
//!   down cleanly.
//!
//! Two interchangeable backends run the same SPMD body:
//!
//! - **Thread-backed** (the default, [`world::launch`] family): PEs are
//!   threads of this process. Supports the dynamic race detector and
//!   `collective_publish`.
//! - **Process-backed** ([`proc::launch_process`]): PEs are forked OS
//!   processes over a `memfd_create` + `mmap(MAP_SHARED)` symmetric heap.
//!   True crash isolation — a PE can be `kill -9`-ed mid-epoch and the
//!   launcher reaps it into a typed `SvError::PeFailed` with a
//!   [`svsim_types::PeOp::Term`] record (signal, exit code, barrier epoch
//!   at death) while surviving PEs release through the poisoned barrier.
//!   A parent-side supervisor additionally watches per-PE heartbeat words
//!   (hang detection → `SvError::PeHung`), distinguishes a bounded-wait
//!   barrier expiry (`SvError::BarrierTimeout`) from a peer death, and —
//!   when a respawn budget is configured — re-forks only the dead/hung PE
//!   and re-runs the round on the surviving processes ([`RespawnEvent`]).

pub mod barrier;
pub mod checked;
pub mod fault;
pub mod metrics;
pub mod proc;
pub mod proto;
pub mod race;
pub mod shared;
pub mod signal;
pub mod world;

pub use barrier::{BarrierPoisoned, BarrierToken, SenseBarrier};
pub use checked::{malloc_checked, malloc_checked_reporting, CheckedSym};
pub use fault::{FaultAction, FaultPlan, FaultSpec, PeFailure};
pub use metrics::{MetricsTable, PeCounters, TrafficSnapshot};
pub use proc::{launch_process, ProcOptions, RespawnEvent, ShmemBackend, Wire};
pub use proto::{AtomicWords, MemOrder, ProtoMem};
pub use race::{ConflictKind, RaceAccess, RaceDetector, RaceReport, MAX_TRACKED_PES};
pub use shared::{SharedF64Vec, SharedU64Vec};
pub use signal::{signal, signal_add, wait_until, WaitCmp};
pub use world::{
    launch, launch_detected, launch_with_faults, JobOutput, ShmemCtx, SpmdOutput, SymF64, SymU64,
};
