//! Shared error type across the workspace.

use std::fmt;

/// The SHMEM-level operation a failed PE was executing when it died.
///
/// Carried by [`SvError::PeFailed`] so recovery layers (engine retry,
/// fault-bench reporting) can attribute a failure to the access protocol
/// step that triggered it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeOp {
    /// One-sided store (`put`) — single word or slice.
    Put,
    /// One-sided load (`get`) — single word or slice.
    Get,
    /// `barrier_all` (includes faults *detected* at the barrier, e.g. a
    /// dropped transfer surfacing at the next synchronization epoch).
    Barrier,
    /// Engine-level job execution step (worker running a batched template),
    /// outside the SHMEM runtime proper.
    Exec,
    /// Checkpoint persistence step — the host writing a generation to the
    /// crash-consistent checkpoint store between execution segments.
    Checkpoint,
    /// Abnormal process termination of a process-backed PE, observed by the
    /// launcher's reaper rather than by the PE itself: the child exited
    /// without publishing a result (it was killed by a signal, aborted, or
    /// exited nonzero). Carries the raw wait status and the barrier epoch
    /// the PE had reached when it died, read back from the shared arena.
    Term {
        /// Terminating signal number (`SIGKILL` = 9, ...); `0` when the
        /// child exited normally (with a nonzero code) instead.
        signal: i32,
        /// Exit code for a normal-but-failed exit; `0` when killed by a
        /// signal.
        code: i32,
        /// Barrier epoch the PE had completed when it died.
        epoch: u64,
    },
}

impl fmt::Display for PeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Put => write!(f, "put"),
            Self::Get => write!(f, "get"),
            Self::Barrier => write!(f, "barrier"),
            Self::Exec => write!(f, "exec"),
            Self::Checkpoint => write!(f, "checkpoint"),
            Self::Term {
                signal,
                code,
                epoch,
            } => {
                if *signal != 0 {
                    write!(f, "termination by signal {signal} at barrier epoch {epoch}")
                } else {
                    write!(
                        f,
                        "termination with exit code {code} at barrier epoch {epoch}"
                    )
                }
            }
        }
    }
}

/// Errors produced anywhere in the SV-Sim reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvError {
    /// A qubit index exceeded the register width.
    QubitOutOfRange {
        /// Offending qubit.
        qubit: u64,
        /// Register width.
        n_qubits: u64,
    },
    /// A gate was given the same qubit twice (e.g. `cx q[0], q[0]`).
    DuplicateQubit {
        /// The duplicated qubit index.
        qubit: u64,
    },
    /// Configuration is invalid (e.g. PE count not a power of two, or more
    /// partitions than amplitudes).
    InvalidConfig(String),
    /// OpenQASM parse error with source location.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Message.
        msg: String,
    },
    /// A named entity (register, gate) was not found during elaboration.
    Undefined(String),
    /// Arity mismatch when calling a gate.
    Arity {
        /// Gate name.
        gate: String,
        /// What the definition requires.
        expected: usize,
        /// What the call supplied.
        got: usize,
    },
    /// The SHMEM runtime was misused (bad PE id, out-of-segment access, ...).
    Shmem(String),
    /// A processing element failed (panicked or was killed by an injected
    /// fault) during the given operation. Peers observe the poisoned barrier
    /// and shut down cleanly; this variant identifies the origin.
    PeFailed {
        /// Rank of the failed PE.
        pe: usize,
        /// Operation during which it failed.
        op: PeOp,
    },
    /// Numerical failure (e.g. renormalizing a zero-probability branch).
    Numeric(String),
    /// A processing element stopped making progress: its heartbeat words
    /// stalled past the supervisor's configured deadline and the watchdog
    /// killed it. Distinct from [`SvError::PeFailed`] — the PE was alive but
    /// wedged (e.g. an injected `Hang` fault, a livelock, a stuck syscall).
    PeHung {
        /// Rank of the hung PE.
        pe: usize,
        /// Barrier epoch the PE had completed when the watchdog fired.
        epoch: u64,
        /// How long the heartbeat had been stalled when the PE was killed.
        stalled_ms: u64,
    },
    /// A bounded-wait barrier expired on this PE without a peer death being
    /// observed: the barrier never released within the timeout. Distinct
    /// from both [`SvError::PeFailed`] (a reaped child) and the poisoned
    /// barrier shutdown peers report.
    BarrierTimeout {
        /// Rank of the PE whose wait expired.
        pe: usize,
        /// Barrier epoch that failed to release.
        epoch: u64,
        /// How long the PE waited before giving up.
        waited_ms: u64,
    },
    /// The crash-consistent checkpoint store rejected or failed an operation
    /// (corrupt generation, torn write, I/O failure).
    Checkpoint(String),
}

impl fmt::Display for SvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QubitOutOfRange { qubit, n_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {n_qubits}-qubit register"
                )
            }
            Self::DuplicateQubit { qubit } => {
                write!(f, "gate applied to duplicate qubit {qubit}")
            }
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Self::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            Self::Undefined(name) => write!(f, "undefined symbol: {name}"),
            Self::Arity {
                gate,
                expected,
                got,
            } => write!(f, "gate {gate} expects {expected} argument(s), got {got}"),
            Self::Shmem(msg) => write!(f, "shmem runtime error: {msg}"),
            Self::PeFailed { pe, op } => {
                write!(f, "PE {pe} failed during {op}")
            }
            Self::Numeric(msg) => write!(f, "numeric error: {msg}"),
            Self::PeHung {
                pe,
                epoch,
                stalled_ms,
            } => write!(
                f,
                "PE {pe} hung at barrier epoch {epoch} (no progress for {stalled_ms} ms)"
            ),
            Self::BarrierTimeout {
                pe,
                epoch,
                waited_ms,
            } => write!(
                f,
                "PE {pe} barrier timeout at epoch {epoch} after {waited_ms} ms"
            ),
            Self::Checkpoint(msg) => write!(f, "checkpoint store error: {msg}"),
        }
    }
}

impl std::error::Error for SvError {}

/// Workspace result alias.
pub type SvResult<T> = Result<T, SvError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SvError::QubitOutOfRange {
            qubit: 7,
            n_qubits: 4,
        };
        assert_eq!(e.to_string(), "qubit 7 out of range for 4-qubit register");
        let p = SvError::Parse {
            line: 3,
            col: 14,
            msg: "unexpected token".into(),
        };
        assert!(p.to_string().contains("3:14"));
    }

    #[test]
    fn pe_failed_display() {
        let e = SvError::PeFailed {
            pe: 2,
            op: PeOp::Put,
        };
        assert_eq!(e.to_string(), "PE 2 failed during put");
        assert_eq!(PeOp::Barrier.to_string(), "barrier");
    }

    #[test]
    fn term_display_names_signal_or_code() {
        let killed = PeOp::Term {
            signal: 9,
            code: 0,
            epoch: 41,
        };
        assert_eq!(
            killed.to_string(),
            "termination by signal 9 at barrier epoch 41"
        );
        let exited = PeOp::Term {
            signal: 0,
            code: 3,
            epoch: 7,
        };
        assert_eq!(
            exited.to_string(),
            "termination with exit code 3 at barrier epoch 7"
        );
    }

    #[test]
    fn supervision_display_messages() {
        let hung = SvError::PeHung {
            pe: 3,
            epoch: 12,
            stalled_ms: 500,
        };
        assert_eq!(
            hung.to_string(),
            "PE 3 hung at barrier epoch 12 (no progress for 500 ms)"
        );
        let to = SvError::BarrierTimeout {
            pe: 1,
            epoch: 4,
            waited_ms: 250,
        };
        assert_eq!(
            to.to_string(),
            "PE 1 barrier timeout at epoch 4 after 250 ms"
        );
        let ck = SvError::Checkpoint("torn write".into());
        assert_eq!(ck.to_string(), "checkpoint store error: torn write");
        assert_eq!(PeOp::Checkpoint.to_string(), "checkpoint");
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SvError::Undefined("q".into()));
    }
}
