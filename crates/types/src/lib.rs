//! Common foundation types for the SV-Sim reproduction.
//!
//! This crate is dependency-free and holds everything the rest of the
//! workspace agrees on: complex arithmetic ([`Complex64`]), the strided
//! index mathematics of state-vector gate application ([`bits`]), a
//! deterministic RNG ([`rng`]) so every experiment is reproducible, and the
//! shared error type ([`SvError`]).

pub mod bits;
pub mod complex;
pub mod error;
pub mod numeric;
pub mod rng;

pub use complex::Complex64;
pub use error::{PeOp, SvError, SvResult};
pub use rng::SvRng;

/// Index type for amplitudes and qubits, matching the paper's `IdxType`.
pub type IdxType = u64;

/// Scalar type for amplitudes, matching the paper's `ValType`
/// (double-precision floating point).
pub type ValType = f64;

/// `1/sqrt(2)`, the paper's `S2I` constant used by H, T and friends.
pub const S2I: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Bytes needed to store the state vector of `n` qubits
/// (`16 * 2^n`: a real and an imaginary `f64` per amplitude).
#[must_use]
pub fn state_bytes(n_qubits: usize) -> u128 {
    16u128 << n_qubits
}

/// Number of amplitudes of an `n`-qubit register.
#[must_use]
pub fn dim(n_qubits: usize) -> usize {
    1usize << n_qubits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_bytes_matches_paper_formula() {
        // The paper: a 24-qubit state costs 16 * 2^24 = 256 MiB.
        assert_eq!(state_bytes(24), 16 * (1u128 << 24));
        assert_eq!(state_bytes(0), 16);
        // 45 qubits is the Cori record from related work: ~0.5 PB.
        assert_eq!(state_bytes(45), 16u128 << 45);
    }

    #[test]
    fn dim_is_power_of_two() {
        assert_eq!(dim(0), 1);
        assert_eq!(dim(3), 8);
        assert_eq!(dim(15), 32768);
    }
}
