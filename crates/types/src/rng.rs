//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the reproduction (measurement sampling,
//! random circuits, synthetic datasets, optimizer jitter) draws from
//! [`SvRng`], a xoshiro256** generator seeded via SplitMix64. Keeping the
//! generator in-tree (rather than depending on a `rand` version) pins the
//! exact stream so experiment outputs are stable across builds.

/// SplitMix64 step — used to expand a single `u64` seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** deterministic RNG.
#[derive(Debug, Clone)]
pub struct SvRng {
    s: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    gauss_spare: Option<f64>,
}

impl SvRng {
    /// Seed the generator. Equal seeds give equal streams on every platform.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self {
            s,
            gauss_spare: None,
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)` (rejection-free Lemire reduction).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires bound > 0");
        // 128-bit multiply-shift: negligible bias is unacceptable for tests,
        // so use the widening reduction with rejection on the low word.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.next_below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal deviate via Box-Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid log(0).
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }

    /// Fork a child generator with an independent stream (for per-PE seeding).
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> Self {
        Self::seed_from_u64(self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Export the full generator state (xoshiro words + Box-Muller spare)
    /// for serialization — e.g. into a checkpoint-store generation.
    #[must_use]
    pub fn state(&self) -> ([u64; 4], Option<f64>) {
        (self.s, self.gauss_spare)
    }

    /// Rebuild a generator from a [`state`](Self::state) export; the
    /// resulting stream continues exactly where the exported one stopped.
    #[must_use]
    pub fn from_state(s: [u64; 4], gauss_spare: Option<f64>) -> Self {
        Self { s, gauss_spare }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SvRng::seed_from_u64(42);
        let mut b = SvRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SvRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SvRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut rng = SvRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = rng.next_below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = SvRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SvRng::seed_from_u64(9);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.05, "var was {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SvRng::seed_from_u64(11);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }

    #[test]
    fn state_roundtrip_continues_identically() {
        let mut a = SvRng::seed_from_u64(77);
        // Burn an odd number of gaussians so the Box-Muller spare is cached.
        let _ = a.next_gaussian();
        let _ = a.next_u64();
        let (s, spare) = a.state();
        let mut b = SvRng::from_state(s, spare);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a.next_gaussian().to_bits(), b.next_gaussian().to_bits());
    }

    #[test]
    fn forks_are_independent() {
        let mut root = SvRng::seed_from_u64(5);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
