//! Minimal complex-number arithmetic for state-vector simulation.
//!
//! The simulator stores amplitudes in structure-of-arrays form
//! (`sv_real`, `sv_imag`), so this type is mostly used at API boundaries:
//! gate matrices, amplitude queries, expectation values.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Zero.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Construct from real and imaginary parts.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real value.
    #[must_use]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `r * e^{i theta}`.
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{i theta}` — a pure phase.
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `|z|^2` — the probability weight of an amplitude.
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns NaNs for zero, like `1.0/0.0` semantics.
    #[must_use]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Scale by a real factor.
    #[must_use]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// Principal square root (branch cut on the negative real axis).
    #[must_use]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.norm().sqrt(), self.arg() / 2.0)
    }

    /// Approximate equality within `eps` on both components.
    #[must_use]
    pub fn approx_eq(self, other: Self, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }

    /// True if either component is NaN.
    #[must_use]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl Add for Complex64 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[allow(clippy::suspicious_arithmetic_impl)] // division as multiply-by-inverse
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const EPS: f64 = 1e-12;

    #[test]
    fn basic_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        assert!((a / b * b).approx_eq(a, EPS));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex64::I * Complex64::I).approx_eq(Complex64::real(-1.0), EPS));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.norm() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn cis_special_angles() {
        assert!(Complex64::cis(0.0).approx_eq(Complex64::ONE, EPS));
        assert!(Complex64::cis(FRAC_PI_2).approx_eq(Complex64::I, EPS));
        assert!(Complex64::cis(PI).approx_eq(Complex64::real(-1.0), EPS));
    }

    #[test]
    fn conj_and_norms() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        // z * conj(z) = |z|^2
        assert!((z * z.conj()).approx_eq(Complex64::real(25.0), EPS));
    }

    #[test]
    fn inverse() {
        let z = Complex64::new(0.5, -1.5);
        assert!((z * z.inv()).approx_eq(Complex64::ONE, EPS));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::ONE;
        z += Complex64::I;
        z -= Complex64::new(1.0, 0.0);
        z *= Complex64::I;
        assert!(z.approx_eq(Complex64::real(-1.0), EPS));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn real_scaling_commutes() {
        let z = Complex64::new(2.0, -3.0);
        assert_eq!(z * 2.0, 2.0 * z);
        assert_eq!(z * 2.0, Complex64::new(4.0, -6.0));
    }
}
