//! Deterministic floating-point reduction with a canonical association.
//!
//! Floating-point addition is not associative, so the *shape* of a sum is
//! part of its value: a sequential accumulation over a state vector and a
//! per-partition accumulation followed by a cross-PE combine can differ in
//! the last ULPs even though every term is identical. Once a measurement
//! rescales the state by `1/sqrt(p)`, that ULP leaks into every amplitude
//! and bit-identity across backends is gone.
//!
//! The canonical association used throughout the workspace is the perfect
//! binary tree over the (power-of-two) index space: a node's value is the
//! sum of its two half-range children, down to single-element leaves. The
//! tree composes across any aligned power-of-two partitioning — each PE's
//! partial is exactly one subtree node — so combining partials with
//! [`pairwise_sum`] reproduces the single-device sum bit-for-bit at any
//! PE count.

/// Sum `xs` with the canonical pairwise-tree association.
///
/// For power-of-two lengths the split is an exact halving at every level,
/// matching the subtree decomposition of a partitioned state vector. For
/// other lengths the left child takes the largest power-of-two prefix, so
/// the result is still a pure function of the values and their order.
#[must_use]
pub fn pairwise_sum(xs: &[f64]) -> f64 {
    match xs.len() {
        0 => 0.0,
        1 => xs[0],
        2 => xs[0] + xs[1],
        n => {
            // Largest power of two strictly below n: exact halving for
            // power-of-two lengths, power-of-two prefix otherwise.
            let half = 1usize << (n - 1).ilog2();
            pairwise_sum(&xs[..half]) + pairwise_sum(&xs[half..])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sums() {
        assert_eq!(pairwise_sum(&[]), 0.0);
        assert_eq!(pairwise_sum(&[3.5]), 3.5);
        assert_eq!(pairwise_sum(&[1.0, 2.0]), 3.0);
        assert_eq!(
            pairwise_sum(&[1.0, 2.0, 3.0, 4.0]),
            (1.0 + 2.0) + (3.0 + 4.0)
        );
    }

    #[test]
    fn composes_over_aligned_halves() {
        // Partials computed per aligned half then combined pairwise must
        // equal the whole-array tree — the property the distributed
        // measurement reduction relies on.
        let xs: Vec<f64> = (0..64).map(|i| 1.0 / f64::from(i + 1)).collect();
        let whole = pairwise_sum(&xs);
        let halves = [pairwise_sum(&xs[..32]), pairwise_sum(&xs[32..])];
        assert_eq!(whole.to_bits(), pairwise_sum(&halves).to_bits());
        let quarters: Vec<f64> = xs.chunks(16).map(pairwise_sum).collect();
        assert_eq!(whole.to_bits(), pairwise_sum(&quarters).to_bits());
    }

    #[test]
    fn differs_from_sequential_where_rounding_bites() {
        // Sanity check that the association actually matters for the kinds
        // of irrational values quantum amplitudes take: if tree and
        // sequential always agreed this module would be pointless.
        let xs: Vec<f64> = (0..4096)
            .map(|i| (f64::from(i) * 0.737_123).sin().powi(2) / 4096.0)
            .collect();
        let seq: f64 = xs.iter().sum();
        let tree = pairwise_sum(&xs);
        assert!((seq - tree).abs() < 1e-12);
        assert_ne!(seq.to_bits(), tree.to_bits());
    }

    #[test]
    fn non_power_of_two_lengths_are_deterministic() {
        let xs: Vec<f64> = (0..7).map(|i| 0.1 * f64::from(i + 1)).collect();
        // Left child takes the largest power-of-two prefix: split 4 | 3.
        let expect = pairwise_sum(&xs[..4]) + pairwise_sum(&xs[4..]);
        assert_eq!(pairwise_sum(&xs).to_bits(), expect.to_bits());
    }
}
