//! Strided index arithmetic for state-vector gate application.
//!
//! These are the `s_i` formulas of the paper's Eq. (1) and Eq. (2): applying
//! a 1-qubit gate on qubit `q` touches the amplitude pairs
//! `(s_i, s_i + 2^q)`, and a 2-qubit gate on qubits `p < q` touches the
//! quadruples `(s_i, s_i + 2^p, s_i + 2^q, s_i + 2^p + 2^q)`. The stride of
//! `s_i` as `i` advances is what turns gate application into fine-grained
//! irregular memory traffic once the vector is partitioned.

use crate::IdxType;

/// Base index `s_i` for the `i`-th amplitude pair of a 1-qubit gate on
/// qubit `q` (Eq. 1): `s_i = floor(i / 2^q) * 2^(q+1) + (i mod 2^q)`.
///
/// Equivalently: insert a `0` bit at bit-position `q` of `i`.
#[inline]
#[must_use]
pub fn pair_base_1q(i: IdxType, q: u32) -> IdxType {
    ((i >> q) << (q + 1)) | (i & ((1 << q) - 1))
}

/// Base index `s_i` for the `i`-th amplitude quadruple of a 2-qubit gate on
/// qubits `p < q` (Eq. 2).
///
/// Equivalently: insert `0` bits at bit-positions `p` and `q` of `i`.
///
/// # Panics
/// Debug-asserts `p < q`.
#[inline]
#[must_use]
pub fn quad_base_2q(i: IdxType, p: u32, q: u32) -> IdxType {
    debug_assert!(p < q, "quad_base_2q requires p < q");
    // Literal transcription of the paper's formula:
    //   s_i = floor(floor(i/2^p) / 2^(q-p-1)) * 2^(q+1)
    //       + (floor(i/2^p) mod 2^(q-p-1)) * 2^(p+1)
    //       + (i mod 2^p)
    let outer = (i >> p) >> (q - p - 1);
    let mid = (i >> p) & ((1 << (q - p - 1)) - 1);
    let low = i & ((1 << p) - 1);
    (outer << (q + 1)) | (mid << (p + 1)) | low
}

/// Insert a `0` bit into `x` at bit position `pos`, shifting higher bits up.
#[inline]
#[must_use]
pub fn insert_zero_bit(x: IdxType, pos: u32) -> IdxType {
    ((x >> pos) << (pos + 1)) | (x & ((1 << pos) - 1))
}

/// Insert `0` bits at every position in `positions` (must be strictly
/// ascending). Used by multi-controlled gates to enumerate the subspace
/// where all the involved qubits are free.
#[inline]
#[must_use]
pub fn insert_zero_bits(mut x: IdxType, positions: &[u32]) -> IdxType {
    for &p in positions {
        x = insert_zero_bit(x, p);
    }
    x
}

/// Extract bit `q` of `idx` as 0 or 1.
#[inline]
#[must_use]
pub fn bit(idx: IdxType, q: u32) -> IdxType {
    (idx >> q) & 1
}

/// Set bit `q` of `idx`.
#[inline]
#[must_use]
pub fn set_bit(idx: IdxType, q: u32) -> IdxType {
    idx | (1 << q)
}

/// Clear bit `q` of `idx`.
#[inline]
#[must_use]
pub fn clear_bit(idx: IdxType, q: u32) -> IdxType {
    idx & !(1 << q)
}

/// Flip bit `q` of `idx`.
#[inline]
#[must_use]
pub fn flip_bit(idx: IdxType, q: u32) -> IdxType {
    idx ^ (1 << q)
}

/// Bit mask with bits set at all `positions`.
#[inline]
#[must_use]
pub fn mask_of(positions: &[u32]) -> IdxType {
    positions.iter().fold(0, |m, &p| m | (1 << p))
}

/// Parity (0/1) of the bits of `idx` selected by `mask` — used for Pauli-Z
/// string expectation values.
#[inline]
#[must_use]
pub fn masked_parity(idx: IdxType, mask: IdxType) -> u32 {
    (idx & mask).count_ones() & 1
}

/// Ceil-log2 of `x` (0 for `x <= 1`).
#[inline]
#[must_use]
pub fn ceil_log2(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SvRng;

    /// Reference implementation of Eq. 1 exactly as printed in the paper.
    fn pair_base_reference(i: u64, q: u32) -> u64 {
        (i / (1 << q)) * (1 << (q + 1)) + (i % (1 << q))
    }

    /// Reference implementation of Eq. 2 exactly as printed in the paper.
    fn quad_base_reference(i: u64, p: u32, q: u32) -> u64 {
        ((i / (1 << p)) / (1 << (q - p - 1))) * (1 << (q + 1))
            + ((i / (1 << p)) % (1 << (q - p - 1))) * (1 << (p + 1))
            + (i % (1 << p))
    }

    #[test]
    fn pair_base_matches_paper_small() {
        // n = 3 qubits, gate on q = 1: pairs are (0,2),(1,3),(4,6),(5,7).
        let bases: Vec<u64> = (0..4).map(|i| pair_base_1q(i, 1)).collect();
        assert_eq!(bases, vec![0, 1, 4, 5]);
    }

    #[test]
    fn pair_bases_cover_half_space_disjointly() {
        // For n qubits and any q, the set {s_i} U {s_i + 2^q} must be exactly
        // [0, 2^n) with no repeats.
        let n = 6u32;
        for q in 0..n {
            let mut seen = vec![false; 1 << n];
            for i in 0..(1u64 << (n - 1)) {
                let s = pair_base_1q(i, q);
                let t = s + (1 << q);
                assert!(!seen[s as usize] && !seen[t as usize]);
                seen[s as usize] = true;
                seen[t as usize] = true;
                assert_eq!(bit(s, q), 0);
                assert_eq!(bit(t, q), 1);
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn quad_bases_cover_space_disjointly() {
        let n = 6u32;
        for p in 0..n {
            for q in (p + 1)..n {
                let mut seen = vec![false; 1 << n];
                for i in 0..(1u64 << (n - 2)) {
                    let s = quad_base_2q(i, p, q);
                    for (dp, dq) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
                        let idx = s + dp * (1 << p) + dq * (1 << q);
                        assert!(!seen[idx as usize], "dup at p={p} q={q} i={i}");
                        seen[idx as usize] = true;
                    }
                    assert_eq!(bit(s, p), 0);
                    assert_eq!(bit(s, q), 0);
                }
                assert!(seen.iter().all(|&b| b));
            }
        }
    }

    #[test]
    fn bit_ops() {
        assert_eq!(bit(0b1010, 1), 1);
        assert_eq!(bit(0b1010, 0), 0);
        assert_eq!(set_bit(0b1010, 0), 0b1011);
        assert_eq!(clear_bit(0b1010, 1), 0b1000);
        assert_eq!(flip_bit(0b1010, 3), 0b0010);
        assert_eq!(mask_of(&[0, 2, 5]), 0b100101);
        assert_eq!(masked_parity(0b111, 0b101), 0);
        assert_eq!(masked_parity(0b110, 0b101), 1);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn insert_zero_bits_multi() {
        // Inserting at ascending positions 1 and 3 of 0b11 -> bits land at 0,2
        // then position-3 zero splits again.
        let x = insert_zero_bits(0b11, &[1, 3]);
        assert_eq!(bit(x, 1), 0);
        assert_eq!(bit(x, 3), 0);
        assert_eq!(x.count_ones(), 2);
    }

    // Randomized property checks over a fixed seeded stream (the offline
    // stand-in for the original proptest cases).

    #[test]
    fn pair_base_matches_reference() {
        let mut rng = SvRng::seed_from_u64(0xB175_0001);
        for _ in 0..2000 {
            let i = rng.next_below(1 << 20);
            let q = rng.range_usize(0, 40) as u32;
            assert_eq!(pair_base_1q(i, q), pair_base_reference(i, q), "i={i} q={q}");
        }
    }

    #[test]
    fn quad_base_matches_reference() {
        let mut rng = SvRng::seed_from_u64(0xB175_0002);
        for _ in 0..2000 {
            let i = rng.next_below(1 << 20);
            let p = rng.range_usize(0, 20) as u32;
            let q = p + rng.range_usize(1, 20) as u32;
            assert_eq!(
                quad_base_2q(i, p, q),
                quad_base_reference(i, p, q),
                "i={i} p={p} q={q}"
            );
        }
    }

    #[test]
    fn insert_zero_is_monotone() {
        // Order-preserving: a < b implies insert(a) < insert(b).
        let mut rng = SvRng::seed_from_u64(0xB175_0003);
        for _ in 0..2000 {
            let a = rng.next_below(1 << 30);
            let b = rng.next_below(1 << 30);
            let pos = rng.range_usize(0, 30) as u32;
            if a == b {
                continue;
            }
            let (lo, hi) = (a.min(b), a.max(b));
            assert!(
                insert_zero_bit(lo, pos) < insert_zero_bit(hi, pos),
                "a={lo} b={hi} pos={pos}"
            );
        }
    }

    #[test]
    fn flip_is_involution() {
        let mut rng = SvRng::seed_from_u64(0xB175_0004);
        for _ in 0..2000 {
            let x = rng.next_u64();
            let q = rng.range_usize(0, 63) as u32;
            assert_eq!(flip_bit(flip_bit(x, q), q), x, "x={x} q={q}");
        }
    }
}
