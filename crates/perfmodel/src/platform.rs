//! Platform specifications (paper Table 3) and calibrated device /
//! interconnect parameters.
//!
//! None of the paper's hardware is available here, so each platform is an
//! analytic model: a roofline device (effective strided-access bandwidth,
//! DP throughput, per-gate synchronization floor, cache capacity for the
//! small-`n` boost) plus an interconnect (per-message gap, link bandwidth,
//! topology contention). The constants are calibrated so the *relative*
//! behaviour the paper reports (§4.1 observations i-v, the scaling sweet
//! spots of Figs. 7-13) emerges from the model; absolute numbers are
//! indicative only. See DESIGN.md for the substitution rationale.

/// A compute device (one CPU core, one GPU, one Phi core).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Display name.
    pub name: &'static str,
    /// Effective DRAM/HBM bandwidth for strided state-vector access, GB/s.
    pub mem_bw_gbps: f64,
    /// Effective bandwidth when the state fits in cache, GB/s (CPUs; equal
    /// to `mem_bw_gbps` for GPUs, which have no meaningful LLC boost here).
    pub cache_bw_gbps: f64,
    /// Cache capacity for the boost, MiB.
    pub cache_mib: f64,
    /// Double-precision throughput, GFLOP/s.
    pub flops_gflops: f64,
    /// Per-gate synchronization/launch floor, microseconds (grid sync on
    /// GPUs, loop startup on CPUs).
    pub gate_overhead_us: f64,
    /// Additional per-gate runtime parse-and-branch penalty, microseconds
    /// (the HIP/MI100 path without device function pointers).
    pub dispatch_penalty_us: f64,
}

/// Interconnect topology families of the evaluated systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Multi-socket CPU bus (QPI/UPI): saturates hard beyond a socket.
    CpuBus,
    /// KNL on-chip 2D mesh (Omni-Path on die): constrained all-to-all.
    Mesh2D,
    /// NVSwitch / Infinity Fabric: near-uniform all-to-all.
    SwitchAllToAll,
    /// Multi-node InfiniBand fat tree.
    FatTree,
}

/// An interconnect between partitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectSpec {
    /// Display name.
    pub name: &'static str,
    /// Per-link (or per-endpoint injection) bandwidth, GB/s.
    pub link_bw_gbps: f64,
    /// Effective per-message gap for pipelined fine-grained one-sided
    /// traffic, microseconds.
    pub msg_gap_us: f64,
    /// Per-barrier synchronization cost coefficient, microseconds
    /// (multiplied by `log2(workers)`).
    pub barrier_us_per_log: f64,
    /// Additional per-worker linear barrier/contention coefficient,
    /// microseconds.
    pub barrier_us_per_worker: f64,
    /// Topology.
    pub topology: Topology,
}

impl InterconnectSpec {
    /// Effective aggregate bandwidth available to `workers` partitions
    /// exchanging all-to-all traffic, GB/s.
    #[must_use]
    pub fn aggregate_bw(&self, workers: u64) -> f64 {
        let w = workers as f64;
        match self.topology {
            // Within one socket, cores exchange through the shared LLC;
            // crossing the socket boundary moves traffic onto QPI, and
            // oversubscription degrades it (the Fig. 7 cliff beyond 128).
            Topology::CpuBus => {
                if workers <= 28 {
                    60.0
                } else {
                    2.0 * self.link_bw_gbps / (1.0 + (w / 128.0).powi(2))
                }
            }
            // 2D mesh: bisection grows ~sqrt(workers) but the all-to-all
            // pattern congests the links quickly (Fig. 8).
            Topology::Mesh2D => self.link_bw_gbps * w.sqrt() / (1.0 + w / 8.0),
            // NVSwitch: every endpoint gets its full link.
            Topology::SwitchAllToAll => self.link_bw_gbps * w,
            // Fat tree: one injection link per *node* (callers convert
            // workers to nodes), with all-to-all efficiency decaying as the
            // job spreads over more switches.
            Topology::FatTree => self.link_bw_gbps * w / (1.0 + w / 32.0),
        }
    }
}

/// Table 3: the evaluated platforms, as calibrated models.
pub mod devices {
    use super::DeviceSpec;

    /// AMD 2nd-gen EPYC 7742, one core (the Fig. 6 reference).
    pub const EPYC_7742: DeviceSpec = DeviceSpec {
        name: "AMD_EPYC7742",
        mem_bw_gbps: 11.0,
        cache_bw_gbps: 100.0,
        cache_mib: 0.125,
        flops_gflops: 35.0,
        gate_overhead_us: 0.03,
        dispatch_penalty_us: 0.0,
    };

    /// Intel Xeon Platinum 8276M, one core, scalar code.
    pub const INTEL_P8276: DeviceSpec = DeviceSpec {
        name: "INTEL_P8276",
        mem_bw_gbps: 9.0,
        cache_bw_gbps: 90.0,
        cache_mib: 0.125,
        flops_gflops: 30.0,
        gate_overhead_us: 0.03,
        dispatch_penalty_us: 0.0,
    };

    /// Intel Xeon Platinum 8276M with AVX-512 gather/scatter kernels
    /// (paper observation ii: ~2x).
    pub const INTEL_P8276_AVX512: DeviceSpec = DeviceSpec {
        name: "INTEL_P8276_AVX512",
        mem_bw_gbps: 18.0,
        cache_bw_gbps: 180.0,
        cache_mib: 0.125,
        flops_gflops: 120.0,
        gate_overhead_us: 0.03,
        dispatch_penalty_us: 0.0,
    };

    /// IBM POWER9, one core (Summit host CPU).
    pub const POWER9: DeviceSpec = DeviceSpec {
        name: "IBM_POWER9",
        mem_bw_gbps: 10.0,
        cache_bw_gbps: 80.0,
        cache_mib: 0.125,
        flops_gflops: 28.0,
        gate_overhead_us: 0.03,
        dispatch_penalty_us: 0.0,
    };

    /// Intel Xeon Phi 7230 (KNL), one core, scalar (observation iv: a
    /// light-weight Atom core, slower than a server core).
    pub const PHI_7230: DeviceSpec = DeviceSpec {
        name: "INTEL_PHI7230",
        mem_bw_gbps: 3.5,
        cache_bw_gbps: 25.0,
        cache_mib: 0.125,
        flops_gflops: 9.0,
        gate_overhead_us: 0.05,
        dispatch_penalty_us: 0.0,
    };

    /// Xeon Phi 7230 with AVX-512.
    pub const PHI_7230_AVX512: DeviceSpec = DeviceSpec {
        name: "INTEL_PHI7230_AVX512",
        mem_bw_gbps: 7.0,
        cache_bw_gbps: 50.0,
        cache_mib: 0.125,
        flops_gflops: 35.0,
        gate_overhead_us: 0.05,
        dispatch_penalty_us: 0.0,
    };

    /// NVIDIA V100 (effective strided HBM bandwidth ~25% of the 900 GB/s
    /// peak for gather/scatter per-amplitude access).
    pub const V100: DeviceSpec = DeviceSpec {
        name: "NVIDIA_V100",
        mem_bw_gbps: 70.0,
        cache_bw_gbps: 70.0,
        cache_mib: 0.0,
        flops_gflops: 7000.0,
        gate_overhead_us: 0.5,
        dispatch_penalty_us: 0.0,
    };

    /// NVIDIA A100 (observation iii: memory-bound, so barely faster than
    /// V100 at these sizes despite the bigger HBM2e).
    pub const A100: DeviceSpec = DeviceSpec {
        name: "NVIDIA_A100",
        mem_bw_gbps: 110.0,
        cache_bw_gbps: 110.0,
        cache_mib: 0.0,
        flops_gflops: 9700.0,
        gate_overhead_us: 0.5,
        dispatch_penalty_us: 0.0,
    };

    /// AMD MI100 under HIP: no device function pointers, so every gate
    /// pays a parse-and-branch penalty inside the kernel, and the fat
    /// non-inlined kernel thrashes the instruction cache (observation v).
    pub const MI100: DeviceSpec = DeviceSpec {
        name: "AMD_MI100",
        mem_bw_gbps: 85.0,
        cache_bw_gbps: 85.0,
        cache_mib: 0.0,
        flops_gflops: 11500.0,
        gate_overhead_us: 0.5,
        dispatch_penalty_us: 14.0,
    };
}

/// The interconnects of Table 3's systems.
pub mod interconnects {
    use super::{InterconnectSpec, Topology};

    /// Intel server UPI/QPI between sockets (Fig. 7).
    pub const QPI: InterconnectSpec = InterconnectSpec {
        name: "QPI",
        link_bw_gbps: 18.0,
        msg_gap_us: 0.002,
        barrier_us_per_log: 0.25,
        barrier_us_per_worker: 0.05,
        topology: Topology::CpuBus,
    };

    /// KNL on-die 2D mesh (Fig. 8) — more constrained all-to-all than QPI.
    pub const KNL_MESH: InterconnectSpec = InterconnectSpec {
        name: "KNL-mesh",
        link_bw_gbps: 6.0,
        msg_gap_us: 0.005,
        barrier_us_per_log: 1.2,
        barrier_us_per_worker: 0.5,
        topology: Topology::Mesh2D,
    };

    /// NVSwitch in DGX-2 / DGX-A100 (Figs. 9-10).
    pub const NVSWITCH: InterconnectSpec = InterconnectSpec {
        name: "NVSwitch",
        link_bw_gbps: 110.0,
        msg_gap_us: 0.0004,
        barrier_us_per_log: 0.15,
        barrier_us_per_worker: 0.0,
        topology: Topology::SwitchAllToAll,
    };

    /// Infinity Fabric between MI100s (Fig. 11).
    pub const INFINITY_FABRIC: InterconnectSpec = InterconnectSpec {
        name: "InfinityFabric",
        link_bw_gbps: 70.0,
        msg_gap_us: 0.0001,
        barrier_us_per_log: 0.6,
        barrier_us_per_worker: 0.0,
        topology: Topology::SwitchAllToAll,
    };

    /// Summit EDR InfiniBand fat tree (Figs. 12-13): per-node injection.
    pub const SUMMIT_IB: InterconnectSpec = InterconnectSpec {
        name: "Summit-IB",
        link_bw_gbps: 23.0,
        msg_gap_us: 0.004,
        barrier_us_per_log: 2.0,
        barrier_us_per_worker: 0.0,
        topology: Topology::FatTree,
    };
}

/// A Table 3 row for the reproduction report.
#[derive(Debug, Clone, Copy)]
pub struct PlatformRow {
    /// System name.
    pub system: &'static str,
    /// Host CPU model.
    pub cpu: &'static str,
    /// Accelerator (if any).
    pub accelerator: Option<&'static str>,
    /// Interconnect.
    pub interconnect: &'static str,
    /// Nodes in the evaluated system.
    pub nodes: u32,
}

/// The six evaluation platforms of Table 3.
#[must_use]
pub fn table3() -> Vec<PlatformRow> {
    vec![
        PlatformRow {
            system: "Intel Server",
            cpu: "Intel Xeon P-8276M",
            accelerator: None,
            interconnect: "QPI/UPI",
            nodes: 1,
        },
        PlatformRow {
            system: "A100 Server",
            cpu: "AMD EPYC 7742",
            accelerator: Some("NVIDIA Ampere A100 x8"),
            interconnect: "NVLink & NVSwitch",
            nodes: 1,
        },
        PlatformRow {
            system: "V100-DGX-2",
            cpu: "Intel Xeon P-8168",
            accelerator: Some("NVIDIA Volta V100 x16"),
            interconnect: "NVLink & NVSwitch",
            nodes: 1,
        },
        PlatformRow {
            system: "OLCF Spock",
            cpu: "AMD EPYC 7662",
            accelerator: Some("AMD MI100 x4"),
            interconnect: "Infinity Fabric",
            nodes: 36,
        },
        PlatformRow {
            system: "OLCF Summit",
            cpu: "IBM Power-9",
            accelerator: Some("NVIDIA Volta V100 x6"),
            interconnect: "NVLink + EDR InfiniBand",
            nodes: 4608,
        },
        PlatformRow {
            system: "ALCF Theta",
            cpu: "Intel Xeon Phi-7230",
            accelerator: Some("Xeon Phi-7230 (self-hosted)"),
            interconnect: "Omni-Path",
            nodes: 4392,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_six_platforms() {
        assert_eq!(table3().len(), 6);
    }

    #[test]
    fn qpi_saturates_beyond_128_workers() {
        let q = interconnects::QPI;
        let bw64 = q.aggregate_bw(64);
        let bw256 = q.aggregate_bw(256);
        assert!(
            bw256 < bw64,
            "QPI contention must degrade aggregate bandwidth at 256 cores"
        );
    }

    #[test]
    fn nvswitch_scales_linearly() {
        let s = interconnects::NVSWITCH;
        assert!((s.aggregate_bw(16) / s.aggregate_bw(1) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn mesh_is_weaker_than_bus_at_scale() {
        // Observation from Fig. 8: the KNL mesh is more constrained than
        // QPI for all-to-all traffic.
        let per_worker_qpi = interconnects::QPI.aggregate_bw(64) / 64.0;
        let per_worker_mesh = interconnects::KNL_MESH.aggregate_bw(64) / 64.0;
        assert!(per_worker_mesh < per_worker_qpi);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // guards the calibration constants
    fn avx512_doubles_effective_bandwidth() {
        assert!(devices::INTEL_P8276_AVX512.mem_bw_gbps / devices::INTEL_P8276.mem_bw_gbps >= 1.8);
        assert!(devices::PHI_7230_AVX512.mem_bw_gbps / devices::PHI_7230.mem_bw_gbps >= 1.8);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // guards the calibration constants
    fn mi100_pays_dispatch_penalty() {
        assert!(devices::MI100.dispatch_penalty_us > 5.0);
        assert_eq!(devices::V100.dispatch_penalty_us, 0.0);
    }
}
