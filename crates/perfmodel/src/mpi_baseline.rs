//! The MPI-style communication baseline — the strategy the paper argues
//! *against* (§1-§2).
//!
//! Traditional distributed state-vector simulators route amplitude
//! exchange through CPU-managed MPI: per gate, remote elements are packed
//! into per-peer buffers, staged through host memory (for accelerators),
//! sent as coarse messages, and unpacked — serializing communication
//! against computation and adding device<->host hops. This module prices
//! that pipeline on the same traffic counts the SHMEM estimator uses, so
//! the two communication models can be compared like-for-like (the
//! `ablation_comm` binary).

use crate::platform::{DeviceSpec, InterconnectSpec};
use svsim_core::compile::CompiledGate;
use svsim_core::traffic::gate_traffic;

/// Parameters of the CPU-managed MPI pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpiPipeline {
    /// Per-message software latency (matching + progress engine), us.
    pub msg_latency_us: f64,
    /// Device->host->device staging bandwidth (PCIe-style), GB/s; `None`
    /// for CPU-resident data (no staging hop).
    pub staging_bw_gbps: Option<f64>,
    /// Pack + unpack memory-copy bandwidth, GB/s.
    pub pack_bw_gbps: f64,
    /// Kernel relaunch cost per gate (the accelerator must return control
    /// to the CPU between communication phases), us.
    pub relaunch_us: f64,
}

impl MpiPipeline {
    /// MPI over a GPU cluster: staging over PCIe, kernel relaunch per gate.
    #[must_use]
    pub fn gpu_cluster() -> Self {
        Self {
            msg_latency_us: 2.0,
            staging_bw_gbps: Some(12.0),
            pack_bw_gbps: 20.0,
            relaunch_us: 20.0, // the ~20us per kernel call the paper cites
        }
    }

    /// MPI between CPU ranks: no staging hop, but packing and per-message
    /// latency remain.
    #[must_use]
    pub fn cpu_cluster() -> Self {
        Self {
            msg_latency_us: 1.5,
            staging_bw_gbps: None,
            pack_bw_gbps: 25.0,
            relaunch_us: 0.0,
        }
    }
}

/// Latency of one circuit under MPI-style coarse communication.
///
/// Per gate: roofline compute (same as SHMEM) + pack/unpack copies +
/// staging hops + `2 * (P-1)` coarse messages (exchange with every peer
/// holding needed amplitudes; bounded by the actual communicating-peer
/// count) + kernel relaunch. No computation/communication overlap.
#[must_use]
pub fn mpi_latency(
    dev: &DeviceSpec,
    ic: &InterconnectSpec,
    compiled: &[CompiledGate],
    n_qubits: u32,
    n_workers: u64,
) -> crate::estimator::LatencyBreakdown {
    let pipe = if dev.cache_mib > 0.0 {
        MpiPipeline::cpu_cluster()
    } else {
        MpiPipeline::gpu_cluster()
    };
    let state_bytes = 16.0 * (1u64 << n_qubits) as f64 / n_workers as f64;
    let in_cache = state_bytes < dev.cache_mib * 1024.0 * 1024.0 && dev.cache_mib > 0.0;
    let bw = if in_cache {
        dev.cache_bw_gbps
    } else {
        dev.mem_bw_gbps
    } * 1e9;
    let flops_rate = dev.flops_gflops * 1e9;
    let fabric_bw = ic.aggregate_bw(n_workers) * 1e9;
    let w = n_workers as f64;
    let mut out = crate::estimator::LatencyBreakdown::default();
    for cg in compiled {
        let t = gate_traffic(cg, n_qubits, n_workers);
        let local_bytes = (t.bytes_touched as f64 - t.remote_bytes as f64).max(0.0) / w;
        out.compute_s += (local_bytes / bw).max(t.flops as f64 / flops_rate / w);
        if t.remote_amp_ops > 0 {
            let remote_bytes = t.remote_bytes as f64;
            // Pack on the sender, unpack on the receiver.
            let mut comm = 2.0 * remote_bytes / (pipe.pack_bw_gbps * 1e9 * w);
            // Stage through the host on accelerators (out and back).
            if let Some(staging) = pipe.staging_bw_gbps {
                comm += 2.0 * remote_bytes / (staging * 1e9 * w);
            }
            // Coarse messages: each worker exchanges with each partner
            // whose partition it touches — at most P-1, at least 1.
            let partners = (w - 1.0).max(1.0);
            comm += partners * pipe.msg_latency_us * 1e-6;
            // Wire time on the same fabric as SHMEM.
            comm += remote_bytes / fabric_bw;
            out.comm_s += comm;
            // CPU/device round trip to orchestrate the exchange.
            out.sync_s += pipe.relaunch_us * 1e-6;
        }
        out.sync_s += dev.gate_overhead_us * 1e-6;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{compile_for_estimate, scale_up};
    use crate::platform::{devices, interconnects};

    /// The paper's core claim: fine-grained one-sided SHMEM beats the
    /// CPU-managed MPI pipeline for partitioned state-vector simulation.
    #[test]
    fn shmem_beats_mpi_on_gpu_cluster() {
        let c = svsim_workloads::algos::qft(15).unwrap();
        let compiled = compile_for_estimate(&c);
        for workers in [2u64, 4, 8, 16] {
            let shmem = scale_up(
                &devices::V100,
                &interconnects::NVSWITCH,
                &compiled,
                15,
                workers,
            )
            .total();
            let mpi = mpi_latency(
                &devices::V100,
                &interconnects::NVSWITCH,
                &compiled,
                15,
                workers,
            )
            .total();
            assert!(
                mpi > 2.0 * shmem,
                "at {workers} workers MPI ({mpi:.2e}s) must clearly trail SHMEM ({shmem:.2e}s)"
            );
        }
    }

    #[test]
    fn mpi_gap_grows_with_gate_count() {
        // The per-gate relaunch + packing overhead is linear in depth: the
        // deeper the circuit, the worse MPI gets relative to SHMEM.
        let shallow = compile_for_estimate(&svsim_workloads::algos::ghz(14).unwrap());
        let deep = compile_for_estimate(&svsim_workloads::algos::qft(14).unwrap());
        let ratio = |compiled: &[CompiledGate]| {
            let shmem = scale_up(&devices::V100, &interconnects::NVSWITCH, compiled, 14, 8).total();
            let mpi =
                mpi_latency(&devices::V100, &interconnects::NVSWITCH, compiled, 14, 8).total();
            mpi / shmem
        };
        assert!(ratio(&deep) > 1.0);
        assert!(ratio(&shallow) > 1.0);
    }

    #[test]
    fn cpu_pipeline_has_no_staging() {
        // CPU MPI (no PCIe hop, no relaunch) is penalized less than GPU MPI
        // relative to its SHMEM counterpart.
        let c = svsim_workloads::algos::qft(14).unwrap();
        let compiled = compile_for_estimate(&c);
        let cpu_mpi = mpi_latency(
            &devices::POWER9,
            &interconnects::SUMMIT_IB,
            &compiled,
            14,
            8,
        );
        let gpu_mpi = mpi_latency(&devices::V100, &interconnects::NVSWITCH, &compiled, 14, 8);
        // GPU pipeline pays relaunch costs in sync_s.
        assert!(gpu_mpi.sync_s > cpu_mpi.sync_s);
    }
}
