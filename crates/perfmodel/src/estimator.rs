//! Circuit latency estimation on modeled platforms.
//!
//! The estimator prices a compiled gate stream on a [`DeviceSpec`] +
//! [`InterconnectSpec`] pair using the *exact* per-gate traffic counts of
//! `svsim-core::traffic` (bytes touched, flops, remote amplitude
//! operations at a given partitioning). Per gate:
//!
//! ```text
//! t = overhead + dispatch_penalty
//!   + max(local_bytes / device_bw, flops / device_flops)   (roofline)
//!   + remote_bytes / aggregate_fabric_bw + msgs * gap       (communication)
//!   + barrier(workers)                                      (synchronization)
//! ```

use crate::platform::{DeviceSpec, InterconnectSpec};
use svsim_core::compile::{compile_gates, CompiledGate};
use svsim_core::traffic::gate_traffic;
use svsim_ir::Circuit;

/// Estimated latency breakdown, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyBreakdown {
    /// Roofline compute/memory time.
    pub compute_s: f64,
    /// Communication time (remote traffic).
    pub comm_s: f64,
    /// Synchronization (per-gate barriers, launch floors, dispatch).
    pub sync_s: f64,
}

impl LatencyBreakdown {
    /// Total latency.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.compute_s + self.comm_s + self.sync_s
    }
}

/// Compile a circuit for estimation (specialized kernels).
#[must_use]
pub fn compile_for_estimate(circuit: &Circuit) -> Vec<CompiledGate> {
    let gates: Vec<svsim_ir::Gate> = circuit.gates().copied().collect();
    compile_gates(gates.iter(), circuit.n_qubits(), true)
}

/// Compile a circuit for estimation with the lowering's gate-fusion pass
/// applied (`SimConfig::with_fusion(window)`): runs of adjacent gates whose
/// combined footprint fits a ≤`window`-qubit window collapse into dense
/// fused sweeps, exactly as `CompiledPlan::compile` would emit them. Every
/// estimator path prices the result unchanged — `gate_traffic` knows the
/// fused access patterns (one full-window gather/scatter per item, with
/// the constituent micro-ops' flops replayed) — so a fused plan's roofline
/// reflects its reduced amplitude-pass count. `window == 0` is exactly
/// [`compile_for_estimate`].
#[must_use]
pub fn compile_for_estimate_fused(circuit: &Circuit, window: u8) -> Vec<CompiledGate> {
    let queue = compile_for_estimate(circuit);
    svsim_core::fuse_compiled(&queue, circuit.n_qubits(), window).0
}

/// Single-device latency (Fig. 6).
#[must_use]
pub fn single_device(
    dev: &DeviceSpec,
    compiled: &[CompiledGate],
    n_qubits: u32,
) -> LatencyBreakdown {
    let state_bytes = 16.0 * (1u64 << n_qubits) as f64;
    let in_cache = state_bytes < dev.cache_mib * 1024.0 * 1024.0 && dev.cache_mib > 0.0;
    let bw = if in_cache {
        dev.cache_bw_gbps
    } else {
        dev.mem_bw_gbps
    } * 1e9;
    let flops_rate = dev.flops_gflops * 1e9;
    let mut out = LatencyBreakdown::default();
    for cg in compiled {
        let t = gate_traffic(cg, n_qubits, 1);
        out.compute_s += (t.bytes_touched as f64 / bw).max(t.flops as f64 / flops_rate);
        out.sync_s += (dev.gate_overhead_us + dev.dispatch_penalty_us) * 1e-6;
    }
    out
}

/// Scale-up latency over `n_workers` same-node partitions (Figs. 7-11).
///
/// All workers advance in lockstep (the cooperative-grid / OpenMP model),
/// so per-gate time is the *slowest* worker; with even partitioning that is
/// the per-worker average plus the shared fabric term.
#[must_use]
pub fn scale_up(
    dev: &DeviceSpec,
    ic: &InterconnectSpec,
    compiled: &[CompiledGate],
    n_qubits: u32,
    n_workers: u64,
) -> LatencyBreakdown {
    let state_bytes = 16.0 * (1u64 << n_qubits) as f64 / n_workers as f64;
    let in_cache = state_bytes < dev.cache_mib * 1024.0 * 1024.0 && dev.cache_mib > 0.0;
    let bw = if in_cache {
        dev.cache_bw_gbps
    } else {
        dev.mem_bw_gbps
    } * 1e9;
    let flops_rate = dev.flops_gflops * 1e9;
    let fabric_bw = ic.aggregate_bw(n_workers) * 1e9;
    let w = n_workers as f64;
    let barrier_s =
        (ic.barrier_us_per_log * w.log2().max(0.0) + ic.barrier_us_per_worker * w) * 1e-6;
    let mut out = LatencyBreakdown::default();
    for cg in compiled {
        let t = gate_traffic(cg, n_qubits, n_workers);
        let local_bytes = (t.bytes_touched as f64 - t.remote_bytes as f64).max(0.0) / w;
        let flops = t.flops as f64 / w;
        out.compute_s += (local_bytes / bw).max(flops / flops_rate);
        // Remote traffic shares the fabric; fine-grained messages pipeline
        // with per-message gap paid by the issuing worker.
        let msgs_per_worker = t.remote_amp_ops as f64 / w;
        out.comm_s += t.remote_bytes as f64 / fabric_bw + msgs_per_worker * ic.msg_gap_us * 1e-6;
        out.sync_s += (dev.gate_overhead_us + dev.dispatch_penalty_us) * 1e-6 + barrier_s;
    }
    out
}

/// Shared pricing environment for the scale-out paths (naive and
/// remapped): the derived rates every per-gate/per-exchange term needs.
struct ScaleOutEnv {
    n_qubits: u32,
    n_pes: u64,
    pes_per_node: u64,
    bw: f64,
    flops_rate: f64,
    w: f64,
    barrier_s: f64,
    inter_bw: f64,
    intra_bw: f64,
    overhead_s: f64,
    msg_gap_s: f64,
}

impl ScaleOutEnv {
    fn new(
        dev: &DeviceSpec,
        ic: &InterconnectSpec,
        n_qubits: u32,
        n_pes: u64,
        pes_per_node: u64,
        intra_bw_gbps: f64,
    ) -> Self {
        let nodes = n_pes.div_ceil(pes_per_node);
        let state_bytes = 16.0 * (1u64 << n_qubits) as f64 / n_pes as f64;
        let in_cache = state_bytes < dev.cache_mib * 1024.0 * 1024.0 && dev.cache_mib > 0.0;
        let bw = if in_cache {
            dev.cache_bw_gbps
        } else {
            dev.mem_bw_gbps
        } * 1e9;
        let w = n_pes as f64;
        Self {
            n_qubits,
            n_pes,
            pes_per_node,
            bw,
            flops_rate: dev.flops_gflops * 1e9,
            w,
            barrier_s: ic.barrier_us_per_log * w.log2().max(0.0) * 1e-6,
            inter_bw: ic.aggregate_bw(nodes) * 1e9,
            intra_bw: intra_bw_gbps * 1e9 * nodes as f64,
            overhead_s: (dev.gate_overhead_us + dev.dispatch_penalty_us) * 1e-6,
            msg_gap_s: ic.msg_gap_us * 1e-6,
        }
    }

    /// Price one compiled gate kernel into `out`.
    fn price_gate(&self, cg: &CompiledGate, out: &mut LatencyBreakdown) {
        let (total, inter) = split_traffic(cg, self.n_qubits, self.n_pes, self.pes_per_node);
        let local_bytes =
            (total.bytes_touched as f64 - total.remote_bytes as f64).max(0.0) / self.w;
        out.compute_s += (local_bytes / self.bw).max(total.flops as f64 / self.flops_rate / self.w);
        let intra_bytes = total.remote_bytes.saturating_sub(inter) as f64;
        let msgs_per_pe = total.remote_amp_ops as f64 / self.w;
        out.comm_s += intra_bytes / self.intra_bw
            + inter as f64 / self.inter_bw
            + msgs_per_pe * self.msg_gap_s;
        out.sync_s += self.overhead_s + self.barrier_s;
    }

    /// Price one relabeling slab exchange `(lo, hi)` into `out`. The
    /// exchange ships each PE's half-partition to its unique partner in
    /// runs of `2^lo` amplitudes — few long messages instead of per-word
    /// traffic — then unpacks locally, with a barrier after each stage.
    fn price_exchange(&self, lo: u32, hi: u32, out: &mut LatencyBreakdown) {
        let t = svsim_core::traffic::exchange_traffic(self.n_qubits, self.n_pes);
        let local_bytes = (t.bytes_touched as f64 - t.remote_bytes as f64).max(0.0) / self.w;
        out.compute_s += local_bytes / self.bw;
        // The partner differs in exactly one partition-index bit; when that
        // bit lies at/above the node grouping the whole slab crosses nodes.
        let boundary = self.n_qubits - self.n_pes.trailing_zeros();
        let pe_bit = hi - boundary;
        let inter_node = u64::from(pe_bit) >= u64::from(self.pes_per_node.trailing_zeros());
        let fabric = if inter_node && self.n_pes > self.pes_per_node {
            self.inter_bw
        } else {
            self.intra_bw
        };
        // One message per `2^lo`-amplitude run of re and im, per stage pair.
        let dim = 1u64 << self.n_qubits;
        let msgs_per_pe = (dim >> lo) as f64 / self.w;
        out.comm_s += t.remote_bytes as f64 / fabric + msgs_per_pe * self.msg_gap_s;
        out.sync_s += 2.0 * self.barrier_s;
    }
}

/// Scale-out latency over `n_pes` PEs grouped `pes_per_node` to a node
/// (Figs. 12-13). Intra-node remote traffic moves at `intra_bw_gbps`;
/// inter-node traffic shares the fat-tree injection links.
#[must_use]
pub fn scale_out(
    dev: &DeviceSpec,
    ic: &InterconnectSpec,
    compiled: &[CompiledGate],
    n_qubits: u32,
    n_pes: u64,
    pes_per_node: u64,
    intra_bw_gbps: f64,
) -> LatencyBreakdown {
    let env = ScaleOutEnv::new(dev, ic, n_qubits, n_pes, pes_per_node, intra_bw_gbps);
    let mut out = LatencyBreakdown::default();
    for cg in compiled {
        env.price_gate(cg, &mut out);
    }
    out
}

/// Scale-out latency with communication-avoiding qubit relabeling: price
/// the remapped schedule (`svsim_core::remap::plan_remap`) — bulk slab
/// exchanges where the planner relabels, localized kernels everywhere
/// else. Compare against [`scale_out`] on the same circuit to see the
/// communication-avoidance payoff at Summit scale.
#[must_use]
pub fn scale_out_remapped(
    dev: &DeviceSpec,
    ic: &InterconnectSpec,
    circuit: &Circuit,
    n_pes: u64,
    pes_per_node: u64,
    intra_bw_gbps: f64,
) -> LatencyBreakdown {
    let n_qubits = circuit.n_qubits();
    let env = ScaleOutEnv::new(dev, ic, n_qubits, n_pes, pes_per_node, intra_bw_gbps);
    let plan = svsim_core::remap::plan_remap(circuit.ops(), n_qubits, n_pes);
    let mut out = LatencyBreakdown::default();
    let mut queue = Vec::new();
    for (op, swaps) in plan.ops.iter().zip(&plan.pre_swaps) {
        for &(lo, hi) in swaps {
            env.price_exchange(lo, hi, &mut out);
        }
        if let svsim_ir::Op::Gate(g) | svsim_ir::Op::IfEq { gate: g, .. } = op {
            queue.clear();
            svsim_core::compile::compile_gate(g, n_qubits, true, &mut queue);
            for cg in &queue {
                env.price_gate(cg, &mut out);
            }
        }
    }
    out
}

/// Total traffic plus the inter-node share of remote bytes.
fn split_traffic(
    cg: &CompiledGate,
    n_qubits: u32,
    n_pes: u64,
    pes_per_node: u64,
) -> (svsim_core::traffic::GateTraffic, u64) {
    let total = gate_traffic(cg, n_qubits, n_pes);
    if n_pes <= pes_per_node {
        return (total, 0);
    }
    // Remote accesses to a partition on the same node stay on NVLink /
    // shared memory; the node count acts as a coarser partitioning, so the
    // inter-node share is exactly the remote traffic at `nodes` partitions
    // (node boundaries are a subset of PE boundaries for powers of two).
    let nodes = n_pes / pes_per_node;
    if nodes <= 1 {
        return (total, 0);
    }
    let node_level = gate_traffic(cg, n_qubits, nodes);
    (total, node_level.remote_bytes.min(total.remote_bytes))
}

/// Convenience: estimate a whole circuit end to end on a single device.
#[must_use]
pub fn estimate_single(dev: &DeviceSpec, circuit: &Circuit) -> LatencyBreakdown {
    single_device(dev, &compile_for_estimate(circuit), circuit.n_qubits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{devices, interconnects};
    use svsim_workloads::medium_suite;

    fn medium_latency(dev: &DeviceSpec) -> Vec<f64> {
        medium_suite()
            .iter()
            .map(|spec| {
                let c = spec.circuit().unwrap();
                estimate_single(dev, &c).total()
            })
            .collect()
    }

    /// §4.1 observation (i): CPUs win at n=11-12, GPUs win by >10x at
    /// n=13-15.
    #[test]
    fn cpu_gpu_crossover() {
        let suite = medium_suite();
        for (i, spec) in suite.iter().enumerate() {
            let c = spec.circuit().unwrap();
            let cpu = estimate_single(&devices::EPYC_7742, &c).total();
            let gpu = estimate_single(&devices::V100, &c).total();
            if spec.paper_qubits <= 12 {
                assert!(
                    cpu < gpu,
                    "{}: CPU ({cpu:.2e}s) should beat GPU ({gpu:.2e}s) at small n",
                    spec.name
                );
            }
            if spec.paper_qubits >= 14 {
                assert!(
                    gpu * 5.0 < cpu,
                    "{} ({i}): GPU should win big at n>=14: cpu {cpu:.2e} gpu {gpu:.2e}",
                    spec.name
                );
            }
        }
    }

    /// §4.1 observation (ii): AVX-512 brings ~2x.
    #[test]
    fn avx512_speedup_about_2x() {
        let scalar = medium_latency(&devices::INTEL_P8276);
        let avx = medium_latency(&devices::INTEL_P8276_AVX512);
        for (s, a) in scalar.iter().zip(&avx) {
            let speedup = s / a;
            assert!(
                (1.5..=2.5).contains(&speedup),
                "AVX-512 speedup {speedup:.2} out of the ~2x band"
            );
        }
    }

    /// §4.1 observation (iii): no big V100 -> A100 jump (memory bound).
    #[test]
    fn a100_close_to_v100() {
        let v = medium_latency(&devices::V100);
        let a = medium_latency(&devices::A100);
        for (v, a) in v.iter().zip(&a) {
            let ratio = v / a;
            assert!(
                (0.8..=1.6).contains(&ratio),
                "V100/A100 ratio {ratio:.2} should be modest"
            );
        }
    }

    /// §4.1 observation (iv): single Phi core slower than a server core.
    #[test]
    fn phi_core_slower_than_cpu_core() {
        let cpu = medium_latency(&devices::INTEL_P8276);
        let phi = medium_latency(&devices::PHI_7230);
        for (c, p) in cpu.iter().zip(&phi) {
            assert!(p > c, "Phi core must be slower");
        }
    }

    /// §4.1 observation (v): MI100 suboptimal due to runtime dispatch.
    #[test]
    fn mi100_slower_than_v100() {
        let v = medium_latency(&devices::V100);
        let m = medium_latency(&devices::MI100);
        for (v, m) in v.iter().zip(&m) {
            assert!(*m > *v * 2.0, "MI100 should trail V100 clearly");
        }
    }

    /// Fig. 7 shape: optimum at 16-32 cores; >128 cores regress.
    #[test]
    fn cpu_scaleup_sweet_spot() {
        let spec = &medium_suite()[7]; // multiplier_n15, the largest medium
        let c = spec.circuit().unwrap();
        let compiled = compile_for_estimate(&c);
        let times: Vec<(u64, f64)> = [1u64, 2, 4, 8, 16, 32, 64, 128, 256]
            .iter()
            .map(|&w| {
                (
                    w,
                    scale_up(
                        &devices::INTEL_P8276_AVX512,
                        &interconnects::QPI,
                        &compiled,
                        c.n_qubits(),
                        w,
                    )
                    .total(),
                )
            })
            .collect();
        let best = times.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
        assert!(
            (8..=64).contains(&best),
            "sweet spot at {best} cores, expected mid-spectrum; times: {times:?}"
        );
        let t256 = times.last().unwrap().1;
        let t_best = times.iter().map(|t| t.1).fold(f64::MAX, f64::min);
        assert!(
            t256 > 1.5 * t_best,
            "256 cores must clearly regress from the optimum"
        );
        // And parallelism must help at all for the 15-qubit circuit.
        assert!(times[0].1 > t_best * 1.5, "scaling should help at n=15");
    }

    /// Fig. 8 shape: Phi optimum sits very low (2-8 cores).
    #[test]
    fn phi_scaleup_sweet_spot_is_low() {
        let spec = &medium_suite()[7];
        let c = spec.circuit().unwrap();
        let compiled = compile_for_estimate(&c);
        let times: Vec<(u64, f64)> = [1u64, 2, 4, 8, 16, 32, 64]
            .iter()
            .map(|&w| {
                (
                    w,
                    scale_up(
                        &devices::PHI_7230_AVX512,
                        &interconnects::KNL_MESH,
                        &compiled,
                        c.n_qubits(),
                        w,
                    )
                    .total(),
                )
            })
            .collect();
        let best = times.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
        assert!(
            best <= 8,
            "KNL optimum should be at few cores, got {best}; {times:?}"
        );
    }

    /// Fig. 9 shape: DGX-2 strong scaling at n>=13, slight lag 1->2 GPUs at
    /// n=11-12.
    #[test]
    fn dgx2_strong_scaling_with_small_n_lag() {
        for spec in medium_suite() {
            let c = spec.circuit().unwrap();
            let compiled = compile_for_estimate(&c);
            let t = |w: u64| {
                scale_up(
                    &devices::V100,
                    &interconnects::NVSWITCH,
                    &compiled,
                    c.n_qubits(),
                    w,
                )
                .total()
            };
            if spec.paper_qubits <= 12 {
                // Paper: a slight slowdown from 1 to 2 GPUs at n=11-12; the
                // model reproduces "no meaningful gain" (< 1.25x).
                assert!(
                    t(2) > t(1) * 0.8,
                    "{}: small problems should not speed up much at 2 GPUs",
                    spec.name
                );
            } else {
                assert!(t(16) < t(1), "{}: 16 GPUs must beat 1 at n>=13", spec.name);
            }
        }
        // Aggregate speedup at 16 GPUs over the suite, in the strong-scaling
        // ballpark the paper reports (10.6x average; we accept >=3x).
        let mut speedups = Vec::new();
        for spec in medium_suite() {
            let c = spec.circuit().unwrap();
            let compiled = compile_for_estimate(&c);
            let t1 = scale_up(
                &devices::V100,
                &interconnects::NVSWITCH,
                &compiled,
                c.n_qubits(),
                1,
            )
            .total();
            let t16 = scale_up(
                &devices::V100,
                &interconnects::NVSWITCH,
                &compiled,
                c.n_qubits(),
                16,
            )
            .total();
            speedups.push(t1 / t16);
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        // The paper reports 10.6x on DGX-2 hardware; the conservative model
        // reproduces the strong-scaling *shape* with a smaller factor
        // (recorded in EXPERIMENTS.md).
        assert!(avg > 2.0, "average 16-GPU speedup {avg:.1} too low");
    }

    /// Fig. 11 shape: MI100 scaling is positive but modest, with no 1->2
    /// lag (compute-bound, not communication-bound).
    #[test]
    fn mi100_scaling_linear_and_modest() {
        let spec = &medium_suite()[7];
        let c = spec.circuit().unwrap();
        let compiled = compile_for_estimate(&c);
        let t = |w: u64| {
            scale_up(
                &devices::MI100,
                &interconnects::INFINITY_FABRIC,
                &compiled,
                c.n_qubits(),
                w,
            )
            .total()
        };
        assert!(t(2) < t(1), "no parallelization lag on MI100");
        assert!(t(4) < t(2));
        let speedup4 = t(1) / t(4);
        assert!(
            speedup4 < 3.0,
            "MI100 scaling should be modest, got {speedup4:.2}x"
        );
    }

    /// Fig. 12 shape: Summit CPU scale-out gains < 3x from 32 to 1024 PEs.
    #[test]
    fn summit_cpu_scaleout_is_comm_bound() {
        let c = svsim_workloads::algos::qft(20).unwrap();
        let compiled = compile_for_estimate(&c);
        let t = |p: u64| {
            scale_out(
                &devices::POWER9,
                &interconnects::SUMMIT_IB,
                &compiled,
                20,
                p,
                32,
                60.0,
            )
            .total()
        };
        let t32 = t(32);
        let t1024 = t(1024);
        assert!(t1024 < t32, "more PEs must still help somewhat");
        assert!(
            t32 / t1024 < 4.0,
            "CPU scale-out speedup must be limited: {:.2}x",
            t32 / t1024
        );
    }

    /// The communication-avoidance payoff: a circuit that hammers the
    /// partition-index qubits prices far cheaper with relabeling at Summit
    /// GPU scale — a few bulk slab exchanges replace per-gate remote
    /// word traffic.
    #[test]
    fn remapped_scaleout_slashes_comm_at_summit_scale() {
        use svsim_ir::GateKind;
        let n = 20u32;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.apply(GateKind::H, &[q], &[]).unwrap();
        }
        for _ in 0..16 {
            for q in n - 5..n {
                c.apply(GateKind::H, &[q], &[]).unwrap();
            }
        }
        let compiled = compile_for_estimate(&c);
        let naive = scale_out(
            &devices::V100,
            &interconnects::SUMMIT_IB,
            &compiled,
            n,
            1024,
            4,
            130.0,
        );
        let remapped = scale_out_remapped(
            &devices::V100,
            &interconnects::SUMMIT_IB,
            &c,
            1024,
            4,
            130.0,
        );
        assert!(
            remapped.comm_s * 5.0 < naive.comm_s,
            "relabeling must slash modeled comm: remapped {:.3e}s vs naive {:.3e}s",
            remapped.comm_s,
            naive.comm_s
        );
        assert!(
            remapped.total() < naive.total(),
            "and win end to end: {:.3e}s vs {:.3e}s",
            remapped.total(),
            naive.total()
        );
    }

    /// Gate fusion's modeled payoff: a deep rotation ladder confined to a
    /// 3-qubit window prices far cheaper fused — the memory-bound roofline
    /// term scales with amplitude passes, and fusion collapses the pass
    /// count — while the fused queue still accounts for every source
    /// kernel (nothing priced away by the rewrite).
    #[test]
    fn fused_plans_price_cheaper_on_deep_ladders() {
        use svsim_ir::GateKind;
        let n = 22u32;
        let mut c = Circuit::new(n);
        for layer in 0..24 {
            for q in 0..3 {
                c.apply(GateKind::H, &[q], &[]).unwrap();
                c.apply(GateKind::RZ, &[q], &[0.05 * f64::from(layer + 1)])
                    .unwrap();
            }
            c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
            c.apply(GateKind::CX, &[1, 2], &[]).unwrap();
        }
        let plain = compile_for_estimate(&c);
        let fused = compile_for_estimate_fused(&c, 3);
        assert!(fused.len() < plain.len() / 2, "the ladder must collapse");
        assert_eq!(svsim_core::source_kernels(&fused), plain.len());
        let t_plain = single_device(&devices::V100, &plain, n);
        let t_fused = single_device(&devices::V100, &fused, n);
        assert!(
            t_fused.total() * 2.0 < t_plain.total(),
            "fused plan must price ≥2x cheaper: {:.3e}s vs {:.3e}s",
            t_fused.total(),
            t_plain.total()
        );
        // The fused stream prices on the scale-out path too, and its
        // savings survive partitioning (the ladder is partition-local).
        let so_plain = scale_out(
            &devices::V100,
            &interconnects::SUMMIT_IB,
            &plain,
            n,
            64,
            4,
            130.0,
        );
        let so_fused = scale_out(
            &devices::V100,
            &interconnects::SUMMIT_IB,
            &fused,
            n,
            64,
            4,
            130.0,
        );
        assert!(
            so_fused.total() < so_plain.total(),
            "fusion must also win on the modeled scale-out path"
        );
    }

    /// Fig. 13 shape: Summit GPU scale-out keeps scaling to 1024 GPUs.
    #[test]
    fn summit_gpu_scaleout_strong_scaling() {
        let c = svsim_workloads::algos::qft(20).unwrap();
        let compiled = compile_for_estimate(&c);
        let t = |p: u64| {
            scale_out(
                &devices::V100,
                &interconnects::SUMMIT_IB,
                &compiled,
                20,
                p,
                4,
                130.0,
            )
            .total()
        };
        let mut prev = t(4);
        for p in [16u64, 64, 256, 1024] {
            let cur = t(p);
            assert!(cur < prev, "GPU scale-out must keep improving at {p} GPUs");
            prev = cur;
        }
        assert!(
            t(4) / t(1024) > 3.0,
            "GPU scale-out speedup too weak: {:.2}",
            t(4) / t(1024)
        );
    }
}
