//! Analytic performance model of the SV-Sim evaluation platforms.
//!
//! The paper's Figures 6-13 measure latency on six HPC systems (Table 3).
//! This crate models those systems — roofline devices plus interconnect
//! contention — and prices circuits using the exact per-gate traffic counts
//! from `svsim-core`. The model is calibrated to reproduce the paper's
//! *relative* results (who wins, where crossovers and sweet spots fall);
//! absolute times are indicative. Substitution rationale in DESIGN.md.

pub mod estimator;
pub mod mpi_baseline;
pub mod platform;

pub use estimator::{
    compile_for_estimate, estimate_single, scale_out, scale_up, single_device, LatencyBreakdown,
};
pub use mpi_baseline::{mpi_latency, MpiPipeline};
pub use platform::{devices, interconnects, table3, DeviceSpec, InterconnectSpec, Topology};
