//! OpenQASM 2.0 emission: serialize a [`Circuit`] back to source text.
//!
//! Together with [`crate::parse_circuit`] this gives a lossless exchange
//! path with Qiskit/Cirq/ProjectQ (the paper's frontend interop story,
//! §3.3): circuits built programmatically can be exported, and exported
//! text re-parses to an equivalent circuit (tested).

use svsim_ir::{Circuit, Op};
use svsim_types::{SvError, SvResult};

/// Serialize a circuit as an OpenQASM 2.0 program.
///
/// Conventions: one quantum register `q[n]`, one classical register
/// `c[m]`. Classically conditioned gates can only be expressed when the
/// condition covers the whole classical register (an OpenQASM 2.0
/// limitation).
///
/// # Errors
/// [`SvError::InvalidConfig`] for conditions on sub-registers.
pub fn to_qasm(circuit: &Circuit) -> SvResult<String> {
    let mut out = String::with_capacity(64 + circuit.len() * 24);
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.n_qubits()));
    if circuit.n_cbits() > 0 {
        out.push_str(&format!("creg c[{}];\n", circuit.n_cbits()));
    }
    for op in circuit.ops() {
        match op {
            Op::Gate(g) => {
                emit_gate(&mut out, g);
            }
            Op::Measure { qubit, cbit } => {
                out.push_str(&format!("measure q[{qubit}] -> c[{cbit}];\n"));
            }
            Op::Reset { qubit } => {
                out.push_str(&format!("reset q[{qubit}];\n"));
            }
            Op::Barrier(qs) => {
                if qs.is_empty() {
                    out.push_str("barrier q;\n");
                } else {
                    let list: Vec<String> = qs.iter().map(|q| format!("q[{q}]")).collect();
                    out.push_str(&format!("barrier {};\n", list.join(", ")));
                }
            }
            Op::IfEq {
                creg_lo,
                creg_len,
                value,
                gate,
            } => {
                if *creg_lo != 0 || *creg_len != circuit.n_cbits() {
                    return Err(SvError::InvalidConfig(format!(
                        "OpenQASM 2.0 `if` compares a whole register; condition on \
                         c[{creg_lo}..+{creg_len}] cannot be emitted"
                    )));
                }
                out.push_str(&format!("if (c == {value}) "));
                emit_gate(&mut out, gate);
            }
        }
    }
    Ok(out)
}

fn emit_gate(out: &mut String, g: &svsim_ir::Gate) {
    out.push_str(g.kind().mnemonic());
    if !g.params().is_empty() {
        out.push('(');
        for (i, p) in g.params().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Full round-trip precision.
            out.push_str(&format!("{p:?}"));
        }
        out.push(')');
    }
    out.push(' ');
    for (i, q) in g.qubits().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("q[{q}]"));
    }
    out.push_str(";\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_circuit;
    use svsim_ir::{Gate, GateKind};

    fn roundtrip(c: &Circuit) -> Circuit {
        parse_circuit(&to_qasm(c).unwrap()).unwrap()
    }

    #[test]
    fn simple_circuit_roundtrips_exactly() {
        let mut c = Circuit::with_cbits(3, 3);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::CX, &[0, 2], &[]).unwrap();
        c.apply(GateKind::RZ, &[1], &[0.125]).unwrap();
        c.measure(2, 0).unwrap();
        c.reset(1).unwrap();
        c.barrier(&[0, 1]);
        let back = roundtrip(&c);
        assert_eq!(c, back);
    }

    #[test]
    fn all_gates_roundtrip() {
        let mut c = Circuit::new(5);
        for kind in GateKind::ALL {
            let qubits: Vec<u32> = (0..kind.n_qubits() as u32).collect();
            let params: Vec<f64> = (0..kind.n_params()).map(|i| 0.1 + i as f64 * 0.3).collect();
            c.apply(kind, &qubits, &params).unwrap();
        }
        assert_eq!(roundtrip(&c), c);
    }

    #[test]
    fn irrational_parameters_survive() {
        let mut c = Circuit::new(1);
        c.apply(GateKind::RZ, &[0], &[std::f64::consts::PI / 3.0])
            .unwrap();
        c.apply(GateKind::U3, &[0], &[1e-17, -2.5e8, f64::EPSILON])
            .unwrap();
        let back = roundtrip(&c);
        let a: Vec<f64> = c.gates().flat_map(|g| g.params().to_vec()).collect();
        let b: Vec<f64> = back.gates().flat_map(|g| g.params().to_vec()).collect();
        assert_eq!(a, b, "parameters must round-trip bit-exactly");
    }

    #[test]
    fn full_register_condition_roundtrips() {
        let mut c = Circuit::with_cbits(2, 2);
        c.measure(0, 0).unwrap();
        c.if_eq(0, 2, 3, Gate::new(GateKind::X, &[1], &[]).unwrap())
            .unwrap();
        assert_eq!(roundtrip(&c), c);
    }

    #[test]
    fn partial_register_condition_rejected() {
        let mut c = Circuit::with_cbits(2, 2);
        c.if_eq(1, 1, 1, Gate::new(GateKind::X, &[1], &[]).unwrap())
            .unwrap();
        assert!(to_qasm(&c).is_err());
    }

    #[test]
    fn workload_circuits_roundtrip_functionally() {
        use svsim_core::{SimConfig, Simulator};
        for c in [
            svsim_workloads::algos::qft(6).unwrap(),
            svsim_workloads::algos::ghz(6).unwrap(),
            svsim_workloads::random::random_circuit(6, 60, 3),
        ] {
            let back = roundtrip(&c);
            let mut a = Simulator::new(6, SimConfig::single_device()).unwrap();
            a.run(&c).unwrap();
            let mut b = Simulator::new(6, SimConfig::single_device()).unwrap();
            b.run(&back).unwrap();
            assert!(a.state().max_diff(b.state()) < 1e-12);
        }
    }
}
