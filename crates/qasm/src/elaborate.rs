//! Elaboration: OpenQASM AST → SV-Sim [`Circuit`].
//!
//! The SV-Sim ISA implements every gate of `qelib1.inc` natively (Table 1),
//! so including it registers builtins rather than parsing library source.
//! User-defined gates are expanded by macro substitution, with parameter
//! expressions evaluated at expansion time — the circuit handed to the
//! backend is always a flat gate stream.

use crate::ast::{Argument, Expr, GateCall, GateDef, Program, Statement};
use crate::parser::parse;
use std::collections::{HashMap, HashSet};
use svsim_ir::{Circuit, Gate, GateKind};
use svsim_types::{SvError, SvResult};

/// A register: base offset + width in the flat index space.
#[derive(Debug, Clone, Copy)]
struct Reg {
    base: u32,
    size: u32,
}

struct Elaborator {
    qregs: HashMap<String, Reg>,
    cregs: HashMap<String, Reg>,
    gate_defs: HashMap<String, GateDef>,
    opaques: HashSet<String>,
    qelib: bool,
    n_qubits: u32,
    n_cbits: u32,
}

/// Resolve a builtin gate name to its ISA kind.
fn builtin_kind(name: &str, qelib: bool) -> Option<GateKind> {
    // `U` and `CX` are part of the bare language.
    match name {
        "U" => return Some(GateKind::U3),
        "CX" => return Some(GateKind::CX),
        _ => {}
    }
    if !qelib {
        return None;
    }
    // Common aliases used by generators in the wild.
    let canonical = match name {
        "u" => "u3",
        "p" => "u1",
        "cp" => "cu1",
        other => other,
    };
    GateKind::from_mnemonic(canonical)
}

impl Elaborator {
    fn new() -> Self {
        Self {
            qregs: HashMap::new(),
            cregs: HashMap::new(),
            gate_defs: HashMap::new(),
            opaques: HashSet::new(),
            qelib: false,
            n_qubits: 0,
            n_cbits: 0,
        }
    }

    fn qubit_of(&self, arg: &Argument) -> SvResult<Option<(u32, u32)>> {
        // Returns (base, size) of the addressed range: size 1 for indexed.
        let reg = self
            .qregs
            .get(&arg.name)
            .ok_or_else(|| SvError::Undefined(format!("quantum register {}", arg.name)))?;
        match arg.index {
            Some(i) => {
                if i >= u64::from(reg.size) {
                    return Err(SvError::QubitOutOfRange {
                        qubit: i,
                        n_qubits: u64::from(reg.size),
                    });
                }
                Ok(Some((reg.base + i as u32, 1)))
            }
            None => Ok(Some((reg.base, reg.size))),
        }
    }

    fn cbit_of(&self, arg: &Argument) -> SvResult<(u32, u32)> {
        let reg = self
            .cregs
            .get(&arg.name)
            .ok_or_else(|| SvError::Undefined(format!("classical register {}", arg.name)))?;
        match arg.index {
            Some(i) => {
                if i >= u64::from(reg.size) {
                    return Err(SvError::InvalidConfig(format!(
                        "classical index {i} out of range for {}[{}]",
                        arg.name, reg.size
                    )));
                }
                Ok((reg.base + i as u32, 1))
            }
            None => Ok((reg.base, reg.size)),
        }
    }

    /// Apply one gate call with resolved qubit operands.
    fn emit_gate(
        &self,
        circuit: &mut Circuit,
        name: &str,
        params: &[f64],
        qubits: &[u32],
        cond: Option<(u32, u32, u64)>,
        line: usize,
    ) -> SvResult<()> {
        if let Some(kind) = builtin_kind(name, self.qelib) {
            let gate = Gate::new(kind, qubits, params).map_err(|e| SvError::Parse {
                line,
                col: 1,
                msg: e.to_string(),
            })?;
            return match cond {
                Some((lo, len, value)) => circuit.if_eq(lo, len, value, gate),
                None => circuit.push_gate(gate),
            };
        }
        if self.opaques.contains(name) {
            return Err(SvError::Undefined(format!(
                "opaque gate {name} has no simulable definition"
            )));
        }
        let def = self
            .gate_defs
            .get(name)
            .ok_or_else(|| SvError::Undefined(format!("gate {name}")))?;
        if def.params.len() != params.len() {
            return Err(SvError::Arity {
                gate: name.into(),
                expected: def.params.len(),
                got: params.len(),
            });
        }
        if def.qargs.len() != qubits.len() {
            return Err(SvError::Arity {
                gate: name.into(),
                expected: def.qargs.len(),
                got: qubits.len(),
            });
        }
        let pmap: HashMap<&str, f64> = def
            .params
            .iter()
            .map(String::as_str)
            .zip(params.iter().copied())
            .collect();
        let qmap: HashMap<&str, u32> = def
            .qargs
            .iter()
            .map(String::as_str)
            .zip(qubits.iter().copied())
            .collect();
        for call in def.body.clone() {
            let vals = eval_params(&call.params, &|n| pmap.get(n).copied())?;
            let inner_qubits: Vec<u32> = call
                .args
                .iter()
                .map(|a| {
                    if a.index.is_some() {
                        Err(SvError::Parse {
                            line: call.line,
                            col: 1,
                            msg: "indexed arguments are not allowed inside gate bodies".into(),
                        })
                    } else {
                        qmap.get(a.name.as_str())
                            .copied()
                            .ok_or_else(|| SvError::Undefined(format!("gate argument {}", a.name)))
                    }
                })
                .collect::<SvResult<_>>()?;
            self.emit_gate(circuit, &call.name, &vals, &inner_qubits, cond, call.line)?;
        }
        Ok(())
    }

    /// Apply a top-level call with register broadcasting.
    fn apply_call(
        &self,
        circuit: &mut Circuit,
        call: &GateCall,
        cond: Option<(u32, u32, u64)>,
    ) -> SvResult<()> {
        let params = eval_params(&call.params, &|_| None)?;
        // Resolve each argument to (base, size).
        let resolved: Vec<(u32, u32)> = call
            .args
            .iter()
            .map(|a| Ok(self.qubit_of(a)?.expect("quantum arg")))
            .collect::<SvResult<_>>()?;
        let bcast = resolved
            .iter()
            .map(|&(_, s)| s)
            .find(|&s| s > 1)
            .unwrap_or(1);
        for (_, s) in &resolved {
            if *s != 1 && *s != bcast {
                return Err(SvError::Parse {
                    line: call.line,
                    col: 1,
                    msg: format!("mismatched register widths in broadcast ({s} vs {bcast})"),
                });
            }
        }
        for k in 0..bcast {
            let qubits: Vec<u32> = resolved
                .iter()
                .map(|&(b, s)| if s == 1 { b } else { b + k })
                .collect();
            self.emit_gate(circuit, &call.name, &params, &qubits, cond, call.line)?;
        }
        Ok(())
    }

    fn statement(&mut self, circuit: &mut Circuit, stmt: &Statement) -> SvResult<()> {
        match stmt {
            Statement::QReg { .. } | Statement::CReg { .. } | Statement::Include(_) => {
                unreachable!("handled in the first pass")
            }
            Statement::GateDef(def) => {
                self.gate_defs.insert(def.name.clone(), def.clone());
                Ok(())
            }
            Statement::Opaque { name } => {
                self.opaques.insert(name.clone());
                Ok(())
            }
            Statement::Call(call) => self.apply_call(circuit, call, None),
            Statement::Measure { qarg, carg } => {
                let (qb, qs) = self.qubit_of(qarg)?.expect("quantum arg");
                let (cb, cs) = self.cbit_of(carg)?;
                if qs != cs {
                    return Err(SvError::InvalidConfig(format!(
                        "measure width mismatch: {qs} qubits -> {cs} cbits"
                    )));
                }
                for k in 0..qs {
                    circuit.measure(qb + k, cb + k)?;
                }
                Ok(())
            }
            Statement::Reset { qarg } => {
                let (qb, qs) = self.qubit_of(qarg)?.expect("quantum arg");
                for k in 0..qs {
                    circuit.reset(qb + k)?;
                }
                Ok(())
            }
            Statement::Barrier { qargs } => {
                let mut qubits = Vec::new();
                for a in qargs {
                    let (b, s) = self.qubit_of(a)?.expect("quantum arg");
                    qubits.extend(b..b + s);
                }
                circuit.barrier(&qubits);
                Ok(())
            }
            Statement::If { creg, value, body } => {
                let reg = self
                    .cregs
                    .get(creg)
                    .ok_or_else(|| SvError::Undefined(format!("classical register {creg}")))?;
                let cond = Some((reg.base, reg.size, *value));
                match &**body {
                    Statement::Call(call) => self.apply_call(circuit, call, cond),
                    _ => Err(SvError::InvalidConfig(
                        "only gate calls may be conditioned with `if`".into(),
                    )),
                }
            }
        }
    }
}

fn eval_params(exprs: &[Expr], bind: &dyn Fn(&str) -> Option<f64>) -> SvResult<Vec<f64>> {
    exprs.iter().map(|e| e.eval(bind)).collect()
}

/// Elaborate a parsed program into a flat circuit.
///
/// # Errors
/// Undefined symbols, arity mismatches, range violations.
pub fn elaborate(program: &Program) -> SvResult<Circuit> {
    let mut el = Elaborator::new();
    // First pass: registers and includes (sizes must be known up front).
    for stmt in &program.statements {
        match stmt {
            Statement::QReg { name, size } => {
                let base = el.n_qubits;
                el.n_qubits += *size as u32;
                if el
                    .qregs
                    .insert(
                        name.clone(),
                        Reg {
                            base,
                            size: *size as u32,
                        },
                    )
                    .is_some()
                {
                    return Err(SvError::InvalidConfig(format!(
                        "quantum register {name} redeclared"
                    )));
                }
            }
            Statement::CReg { name, size } => {
                let base = el.n_cbits;
                el.n_cbits += *size as u32;
                if el
                    .cregs
                    .insert(
                        name.clone(),
                        Reg {
                            base,
                            size: *size as u32,
                        },
                    )
                    .is_some()
                {
                    return Err(SvError::InvalidConfig(format!(
                        "classical register {name} redeclared"
                    )));
                }
            }
            Statement::Include(path) => {
                if path.contains("qelib1") {
                    el.qelib = true;
                } else {
                    return Err(SvError::Undefined(format!(
                        "include \"{path}\" (only qelib1.inc is built in)"
                    )));
                }
            }
            _ => {}
        }
    }
    let mut circuit = Circuit::with_cbits(el.n_qubits, el.n_cbits);
    for stmt in &program.statements {
        match stmt {
            Statement::QReg { .. } | Statement::CReg { .. } | Statement::Include(_) => {}
            other => el.statement(&mut circuit, other)?,
        }
    }
    Ok(circuit)
}

/// Parse and elaborate OpenQASM 2.0 source into a circuit in one call.
///
/// # Errors
/// Lexical, syntactic, or semantic errors with source locations where
/// available.
pub fn parse_circuit(src: &str) -> SvResult<Circuit> {
    elaborate(&parse(src)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_ir::Op;

    const HEADER: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";

    #[test]
    fn bell_circuit() {
        let c = parse_circuit(&format!(
            "{HEADER}qreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\nmeasure q -> c;"
        ))
        .unwrap();
        assert_eq!(c.n_qubits(), 2);
        assert_eq!(c.n_cbits(), 2);
        let s = c.stats();
        assert_eq!(s.gates, 2);
        assert_eq!(s.measures, 2);
    }

    #[test]
    fn multiple_registers_are_packed() {
        let c = parse_circuit(&format!("{HEADER}qreg a[2];\nqreg b[3];\nx b[0];")).unwrap();
        assert_eq!(c.n_qubits(), 5);
        // b[0] is global qubit 2.
        match &c.ops()[0] {
            Op::Gate(g) => assert_eq!(g.qubits(), &[2]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn broadcast_whole_register() {
        let c = parse_circuit(&format!("{HEADER}qreg q[4];\nh q;")).unwrap();
        assert_eq!(c.stats().gates, 4);
    }

    #[test]
    fn broadcast_mixed_args() {
        // cx q, r broadcasts element-wise; cx q[0], r broadcasts the scalar.
        let c = parse_circuit(&format!(
            "{HEADER}qreg q[2];\nqreg r[2];\ncx q, r;\ncx q[0], r;"
        ))
        .unwrap();
        assert_eq!(c.stats().gates, 4);
        let gates: Vec<Vec<u32>> = c.gates().map(|g| g.qubits().to_vec()).collect();
        assert_eq!(gates[0], vec![0, 2]);
        assert_eq!(gates[1], vec![1, 3]);
        assert_eq!(gates[2], vec![0, 2]);
        assert_eq!(gates[3], vec![0, 3]);
    }

    #[test]
    fn broadcast_width_mismatch_rejected() {
        assert!(parse_circuit(&format!("{HEADER}qreg q[2];\nqreg r[3];\ncx q, r;")).is_err());
    }

    #[test]
    fn user_gate_expansion() {
        let src = format!(
            "{HEADER}qreg q[3];\ngate entangle a, b {{ h a; cx a, b; }}\nentangle q[0], q[2];"
        );
        let c = parse_circuit(&src).unwrap();
        let kinds: Vec<GateKind> = c.gates().map(Gate::kind).collect();
        assert_eq!(kinds, vec![GateKind::H, GateKind::CX]);
        let quads: Vec<Vec<u32>> = c.gates().map(|g| g.qubits().to_vec()).collect();
        assert_eq!(quads[1], vec![0, 2]);
    }

    #[test]
    fn parameterized_user_gate() {
        let src = format!(
            "{HEADER}qreg q[1];\ngate tilt(t) a {{ rz(t/2) a; rz(-t/2) a; rz(t) a; }}\ntilt(0.8) q[0];"
        );
        let c = parse_circuit(&src).unwrap();
        let params: Vec<f64> = c.gates().map(|g| g.params()[0]).collect();
        assert_eq!(params, vec![0.4, -0.4, 0.8]);
    }

    #[test]
    fn nested_user_gates() {
        let src = format!(
            "{HEADER}qreg q[2];\n\
             gate inner a {{ h a; }}\n\
             gate outer a, b {{ inner a; cx a, b; inner b; }}\n\
             outer q[0], q[1];"
        );
        let c = parse_circuit(&src).unwrap();
        assert_eq!(c.stats().gates, 3);
    }

    #[test]
    fn u_and_cx_builtins_without_include() {
        let c = parse_circuit("qreg q[2];\nU(0.1, 0.2, 0.3) q[0];\nCX q[0], q[1];").unwrap();
        let kinds: Vec<GateKind> = c.gates().map(Gate::kind).collect();
        assert_eq!(kinds, vec![GateKind::U3, GateKind::CX]);
        // qelib names are NOT available without the include.
        assert!(parse_circuit("qreg q[1];\nh q[0];").is_err());
    }

    #[test]
    fn conditionals() {
        let src =
            format!("{HEADER}qreg q[2];\ncreg c[2];\nmeasure q[0] -> c[0];\nif (c == 1) x q[1];");
        let c = parse_circuit(&src).unwrap();
        match &c.ops()[1] {
            Op::IfEq {
                creg_lo,
                creg_len,
                value,
                gate,
            } => {
                assert_eq!((*creg_lo, *creg_len, *value), (0, 2, 1));
                assert_eq!(gate.kind(), GateKind::X);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn opaque_calls_rejected() {
        let src = format!("{HEADER}qreg q[1];\nopaque magic a;\nmagic q[0];");
        assert!(matches!(
            parse_circuit(&src),
            Err(SvError::Undefined(msg)) if msg.contains("opaque")
        ));
    }

    #[test]
    fn reset_and_barrier() {
        let src = format!("{HEADER}qreg q[2];\nreset q;\nbarrier q[0], q[1];");
        let c = parse_circuit(&src).unwrap();
        assert!(matches!(c.ops()[0], Op::Reset { qubit: 0 }));
        assert!(matches!(c.ops()[1], Op::Reset { qubit: 1 }));
        assert!(matches!(&c.ops()[2], Op::Barrier(qs) if qs == &vec![0, 1]));
    }

    #[test]
    fn out_of_range_index() {
        assert!(parse_circuit(&format!("{HEADER}qreg q[2];\nx q[5];")).is_err());
    }

    #[test]
    fn redeclared_register() {
        assert!(parse_circuit(&format!("{HEADER}qreg q[2];\nqreg q[2];")).is_err());
    }

    #[test]
    fn all_table1_gates_parse() {
        let src = format!(
            "{HEADER}qreg q[5];\n\
             u3(0.1,0.2,0.3) q[0]; u2(0.1,0.2) q[0]; u1(0.1) q[0]; cx q[0],q[1]; id q[0];\n\
             x q[0]; y q[0]; z q[0]; h q[0]; s q[0]; sdg q[0]; t q[0]; tdg q[0];\n\
             rx(0.1) q[0]; ry(0.1) q[0]; rz(0.1) q[0]; cz q[0],q[1]; cy q[0],q[1];\n\
             swap q[0],q[1]; ch q[0],q[1]; ccx q[0],q[1],q[2]; cswap q[0],q[1],q[2];\n\
             crx(0.1) q[0],q[1]; cry(0.1) q[0],q[1]; crz(0.1) q[0],q[1];\n\
             cu1(0.1) q[0],q[1]; cu3(0.1,0.2,0.3) q[0],q[1]; rxx(0.1) q[0],q[1];\n\
             rzz(0.1) q[0],q[1]; rccx q[0],q[1],q[2]; rc3x q[0],q[1],q[2],q[3];\n\
             c3x q[0],q[1],q[2],q[3]; c3sqrtx q[0],q[1],q[2],q[3]; c4x q[0],q[1],q[2],q[3],q[4];"
        );
        let c = parse_circuit(&src).unwrap();
        assert_eq!(c.stats().gates, 34);
    }
}
