//! Recursive-descent parser for OpenQASM 2.0.

use crate::ast::{Argument, BinOp, Expr, GateCall, GateDef, Program, Statement, UnaryFn};
use crate::lexer::{tokenize, Token, TokenKind};
use svsim_types::{SvError, SvResult};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> SvError {
        let t = self.peek();
        SvError::Parse {
            line: t.line,
            col: t.col,
            msg: msg.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> SvResult<Token> {
        if &self.peek().kind == kind {
            Ok(self.next())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().kind.describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> SvResult<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.next();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn expect_int(&mut self) -> SvResult<u64> {
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.next();
                Ok(v)
            }
            ref other => Err(self.error(format!("expected integer, found {}", other.describe()))),
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.next();
            true
        } else {
            false
        }
    }

    // ---- expressions ------------------------------------------------

    fn expr(&mut self) -> SvResult<Expr> {
        self.additive()
    }

    fn additive(&mut self) -> SvResult<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> SvResult<Expr> {
        let mut lhs = self.power()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.power()?;
            lhs = Expr::Bin(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn power(&mut self) -> SvResult<Expr> {
        let base = self.unary()?;
        if self.eat(&TokenKind::Caret) {
            // Right-associative.
            let exp = self.power()?;
            Ok(Expr::Bin(Box::new(base), BinOp::Pow, Box::new(exp)))
        } else {
            Ok(base)
        }
    }

    fn unary(&mut self) -> SvResult<Expr> {
        if self.eat(&TokenKind::Minus) {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.eat(&TokenKind::Plus) {
            return self.unary();
        }
        self.atom()
    }

    fn atom(&mut self) -> SvResult<Expr> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.next();
                Ok(Expr::Num(v as f64))
            }
            TokenKind::Real(v) => {
                self.next();
                Ok(Expr::Num(v))
            }
            TokenKind::LParen => {
                self.next();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.next();
                if name == "pi" {
                    return Ok(Expr::Pi);
                }
                if let Some(f) = UnaryFn::from_name(&name) {
                    self.expect(&TokenKind::LParen)?;
                    let e = self.expr()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Call(f, Box::new(e)));
                }
                Ok(Expr::Ident(name))
            }
            other => Err(self.error(format!("expected expression, found {}", other.describe()))),
        }
    }

    // ---- arguments ---------------------------------------------------

    fn argument(&mut self) -> SvResult<Argument> {
        let name = self.expect_ident()?;
        let index = if self.eat(&TokenKind::LBracket) {
            let i = self.expect_int()?;
            self.expect(&TokenKind::RBracket)?;
            Some(i)
        } else {
            None
        };
        Ok(Argument { name, index })
    }

    fn argument_list(&mut self) -> SvResult<Vec<Argument>> {
        let mut args = vec![self.argument()?];
        while self.eat(&TokenKind::Comma) {
            args.push(self.argument()?);
        }
        Ok(args)
    }

    // ---- statements --------------------------------------------------

    fn gate_call(&mut self, name: String, line: usize) -> SvResult<GateCall> {
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
            params.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                params.push(self.expr()?);
            }
            self.expect(&TokenKind::RParen)?;
        }
        let args = self.argument_list()?;
        self.expect(&TokenKind::Semicolon)?;
        Ok(GateCall {
            name,
            params,
            args,
            line,
        })
    }

    fn quantum_op(&mut self) -> SvResult<Statement> {
        let tok = self.peek().clone();
        let name = self.expect_ident()?;
        match name.as_str() {
            "measure" => {
                let qarg = self.argument()?;
                self.expect(&TokenKind::Arrow)?;
                let carg = self.argument()?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Statement::Measure { qarg, carg })
            }
            "reset" => {
                let qarg = self.argument()?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Statement::Reset { qarg })
            }
            _ => Ok(Statement::Call(self.gate_call(name, tok.line)?)),
        }
    }

    fn gate_def(&mut self) -> SvResult<GateDef> {
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
            params.push(self.expect_ident()?);
            while self.eat(&TokenKind::Comma) {
                params.push(self.expect_ident()?);
            }
            self.expect(&TokenKind::RParen)?;
        }
        let mut qargs = vec![self.expect_ident()?];
        while self.eat(&TokenKind::Comma) {
            qargs.push(self.expect_ident()?);
        }
        self.expect(&TokenKind::LBrace)?;
        let mut body = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let tok = self.peek().clone();
            let gname = self.expect_ident()?;
            if gname == "barrier" {
                // Barriers inside definitions are scheduling hints; skip the
                // argument list.
                let _ = self.argument_list()?;
                self.expect(&TokenKind::Semicolon)?;
                continue;
            }
            body.push(self.gate_call(gname, tok.line)?);
        }
        Ok(GateDef {
            name,
            params,
            qargs,
            body,
        })
    }

    fn statement(&mut self) -> SvResult<Statement> {
        let tok = self.peek().clone();
        match &tok.kind {
            TokenKind::Ident(name) => match name.as_str() {
                "qreg" | "creg" => {
                    let is_q = name == "qreg";
                    self.next();
                    let rname = self.expect_ident()?;
                    self.expect(&TokenKind::LBracket)?;
                    let size = self.expect_int()?;
                    self.expect(&TokenKind::RBracket)?;
                    self.expect(&TokenKind::Semicolon)?;
                    if is_q {
                        Ok(Statement::QReg { name: rname, size })
                    } else {
                        Ok(Statement::CReg { name: rname, size })
                    }
                }
                "include" => {
                    self.next();
                    let path = match self.peek().kind.clone() {
                        TokenKind::Str(s) => {
                            self.next();
                            s
                        }
                        other => {
                            return Err(
                                self.error(format!("expected string, found {}", other.describe()))
                            )
                        }
                    };
                    self.expect(&TokenKind::Semicolon)?;
                    Ok(Statement::Include(path))
                }
                "gate" => {
                    self.next();
                    Ok(Statement::GateDef(self.gate_def()?))
                }
                "opaque" => {
                    self.next();
                    let gname = self.expect_ident()?;
                    // Skip to the semicolon: opaque gates cannot be simulated.
                    while self.peek().kind != TokenKind::Semicolon
                        && self.peek().kind != TokenKind::Eof
                    {
                        self.next();
                    }
                    self.expect(&TokenKind::Semicolon)?;
                    Ok(Statement::Opaque { name: gname })
                }
                "barrier" => {
                    self.next();
                    let qargs = if self.peek().kind == TokenKind::Semicolon {
                        Vec::new()
                    } else {
                        self.argument_list()?
                    };
                    self.expect(&TokenKind::Semicolon)?;
                    Ok(Statement::Barrier { qargs })
                }
                "if" => {
                    self.next();
                    self.expect(&TokenKind::LParen)?;
                    let creg = self.expect_ident()?;
                    self.expect(&TokenKind::EqEq)?;
                    let value = self.expect_int()?;
                    self.expect(&TokenKind::RParen)?;
                    let body = self.quantum_op()?;
                    Ok(Statement::If {
                        creg,
                        value,
                        body: Box::new(body),
                    })
                }
                _ => self.quantum_op(),
            },
            other => Err(self.error(format!("unexpected {}", other.describe()))),
        }
    }

    fn program(&mut self) -> SvResult<Program> {
        let mut prog = Program::default();
        if self.eat(&TokenKind::OpenQasm) {
            match self.peek().kind {
                TokenKind::Real(v) => {
                    prog.version = Some(v);
                    self.next();
                }
                TokenKind::Int(v) => {
                    prog.version = Some(v as f64);
                    self.next();
                }
                _ => return Err(self.error("expected version number after OPENQASM")),
            }
            self.expect(&TokenKind::Semicolon)?;
        }
        while self.peek().kind != TokenKind::Eof {
            prog.statements.push(self.statement()?);
        }
        Ok(prog)
    }
}

/// Parse OpenQASM 2.0 source into an AST.
///
/// # Errors
/// [`SvError::Parse`] with source location on any syntax error.
pub fn parse(src: &str) -> SvResult<Program> {
    let tokens = tokenize(src)?;
    Parser { tokens, pos: 0 }.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_program() {
        let p = parse("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\nmeasure q[0] -> c[0];").unwrap();
        assert_eq!(p.version, Some(2.0));
        assert_eq!(p.statements.len(), 6);
        assert!(matches!(
            &p.statements[1],
            Statement::QReg { name, size: 2 } if name == "q"
        ));
        assert!(matches!(&p.statements[5], Statement::Measure { .. }));
    }

    #[test]
    fn parameterized_call() {
        let p = parse("rz(pi/4) q[1];").unwrap();
        match &p.statements[0] {
            Statement::Call(c) => {
                assert_eq!(c.name, "rz");
                assert_eq!(c.params.len(), 1);
                let v = c.params[0].eval(&|_| None).unwrap();
                assert!((v - std::f64::consts::FRAC_PI_4).abs() < 1e-15);
                assert_eq!(c.args[0].index, Some(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn whole_register_call() {
        let p = parse("h q;").unwrap();
        match &p.statements[0] {
            Statement::Call(c) => assert_eq!(c.args[0].index, None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn gate_definition() {
        let src = "gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }";
        let p = parse(src).unwrap();
        match &p.statements[0] {
            Statement::GateDef(d) => {
                assert_eq!(d.name, "majority");
                assert_eq!(d.qargs, vec!["a", "b", "c"]);
                assert_eq!(d.body.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parameterized_gate_definition() {
        let src = "gate myrot(theta, phi) a { rz(theta) a; ry(phi/2) a; }";
        let p = parse(src).unwrap();
        match &p.statements[0] {
            Statement::GateDef(d) => {
                assert_eq!(d.params, vec!["theta", "phi"]);
                assert_eq!(d.body.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_statement() {
        let p = parse("if (c == 3) x q[0];").unwrap();
        match &p.statements[0] {
            Statement::If { creg, value, body } => {
                assert_eq!(creg, "c");
                assert_eq!(*value, 3);
                assert!(matches!(**body, Statement::Call(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn barrier_forms() {
        let p = parse("barrier;\nbarrier q;\nbarrier q[0], r[1];").unwrap();
        assert_eq!(p.statements.len(), 3);
        match &p.statements[2] {
            Statement::Barrier { qargs } => assert_eq!(qargs.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn opaque_is_recorded() {
        let p = parse("opaque magic(a, b) q, r;").unwrap();
        assert!(matches!(&p.statements[0], Statement::Opaque { name } if name == "magic"));
    }

    #[test]
    fn error_has_location() {
        let e = parse("qreg q[;").unwrap_err();
        match e {
            SvError::Parse { line: 1, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let p = parse("rz(1 + 2 * 3 ^ 2) q[0];").unwrap();
        match &p.statements[0] {
            Statement::Call(c) => {
                assert_eq!(c.params[0].eval(&|_| None).unwrap(), 19.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_minus_and_functions() {
        let p = parse("rz(-cos(0)) q[0];").unwrap();
        match &p.statements[0] {
            Statement::Call(c) => {
                assert_eq!(c.params[0].eval(&|_| None).unwrap(), -1.0);
            }
            other => panic!("{other:?}"),
        }
    }
}
