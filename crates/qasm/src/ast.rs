//! OpenQASM 2.0 abstract syntax tree.

/// Parameter expressions (angles).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// `pi`.
    Pi,
    /// Gate parameter reference.
    Ident(String),
    /// Binary operation.
    Bin(Box<Expr>, BinOp, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Built-in unary function call.
    Call(UnaryFn, Box<Expr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `^`
    Pow,
}

/// Built-in unary functions of the OpenQASM expression grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryFn {
    /// `sin`
    Sin,
    /// `cos`
    Cos,
    /// `tan`
    Tan,
    /// `exp`
    Exp,
    /// `ln`
    Ln,
    /// `sqrt`
    Sqrt,
}

impl UnaryFn {
    /// Look up by name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "sin" => Some(Self::Sin),
            "cos" => Some(Self::Cos),
            "tan" => Some(Self::Tan),
            "exp" => Some(Self::Exp),
            "ln" => Some(Self::Ln),
            "sqrt" => Some(Self::Sqrt),
            _ => None,
        }
    }

    /// Apply.
    #[must_use]
    pub fn eval(self, x: f64) -> f64 {
        match self {
            Self::Sin => x.sin(),
            Self::Cos => x.cos(),
            Self::Tan => x.tan(),
            Self::Exp => x.exp(),
            Self::Ln => x.ln(),
            Self::Sqrt => x.sqrt(),
        }
    }
}

impl Expr {
    /// Evaluate with gate-parameter bindings.
    ///
    /// # Errors
    /// [`svsim_types::SvError::Undefined`] for unbound identifiers.
    pub fn eval(&self, bindings: &dyn Fn(&str) -> Option<f64>) -> svsim_types::SvResult<f64> {
        Ok(match self {
            Expr::Num(v) => *v,
            Expr::Pi => std::f64::consts::PI,
            Expr::Ident(name) => bindings(name)
                .ok_or_else(|| svsim_types::SvError::Undefined(format!("parameter {name}")))?,
            Expr::Bin(a, op, b) => {
                let (a, b) = (a.eval(bindings)?, b.eval(bindings)?);
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Pow => a.powf(b),
                }
            }
            Expr::Neg(e) => -e.eval(bindings)?,
            Expr::Call(f, e) => f.eval(e.eval(bindings)?),
        })
    }
}

/// A quantum or classical argument: a whole register or one element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Argument {
    /// Register name.
    pub name: String,
    /// Element index, or `None` for the whole register.
    pub index: Option<u64>,
}

/// A gate invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCall {
    /// Gate name (builtin `U`/`CX`, qelib gate, or user-defined).
    pub name: String,
    /// Parameter expressions.
    pub params: Vec<Expr>,
    /// Quantum arguments.
    pub args: Vec<Argument>,
    /// Source line (for error reporting).
    pub line: usize,
}

/// Statements of a program.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `qreg name[n];`
    QReg {
        /// Register name.
        name: String,
        /// Width.
        size: u64,
    },
    /// `creg name[n];`
    CReg {
        /// Register name.
        name: String,
        /// Width.
        size: u64,
    },
    /// `include "...";`
    Include(String),
    /// `gate name(params) qargs { body }`
    GateDef(GateDef),
    /// `opaque name(params) qargs;`
    Opaque {
        /// Gate name.
        name: String,
    },
    /// A gate call.
    Call(GateCall),
    /// `measure q -> c;`
    Measure {
        /// Source.
        qarg: Argument,
        /// Destination.
        carg: Argument,
    },
    /// `reset q;`
    Reset {
        /// Target.
        qarg: Argument,
    },
    /// `barrier args;`
    Barrier {
        /// Involved qubits (empty = none listed).
        qargs: Vec<Argument>,
    },
    /// `if (creg == value) <quantum op>;`
    If {
        /// Compared register.
        creg: String,
        /// Comparison value.
        value: u64,
        /// Conditioned operation (a call, measure, or reset).
        body: Box<Statement>,
    },
}

/// A user gate definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GateDef {
    /// Gate name.
    pub name: String,
    /// Formal parameter names.
    pub params: Vec<String>,
    /// Formal qubit argument names.
    pub qargs: Vec<String>,
    /// Body: gate calls and barriers over the formal arguments.
    pub body: Vec<GateCall>,
}

/// A parsed program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Declared version (e.g. 2.0).
    pub version: Option<f64>,
    /// Statements in order.
    pub statements: Vec<Statement>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_eval() {
        // pi/2 + 2*3
        let e = Expr::Bin(
            Box::new(Expr::Bin(
                Box::new(Expr::Pi),
                BinOp::Div,
                Box::new(Expr::Num(2.0)),
            )),
            BinOp::Add,
            Box::new(Expr::Bin(
                Box::new(Expr::Num(2.0)),
                BinOp::Mul,
                Box::new(Expr::Num(3.0)),
            )),
        );
        let v = e.eval(&|_| None).unwrap();
        assert!((v - (std::f64::consts::FRAC_PI_2 + 6.0)).abs() < 1e-15);
    }

    #[test]
    fn expr_bindings_and_unbound() {
        let e = Expr::Neg(Box::new(Expr::Ident("theta".into())));
        assert_eq!(e.eval(&|n| (n == "theta").then_some(0.5)).unwrap(), -0.5);
        assert!(e.eval(&|_| None).is_err());
    }

    #[test]
    fn unary_fns() {
        assert_eq!(UnaryFn::from_name("cos"), Some(UnaryFn::Cos));
        assert_eq!(UnaryFn::from_name("nope"), None);
        let e = Expr::Call(UnaryFn::Sqrt, Box::new(Expr::Num(9.0)));
        assert_eq!(e.eval(&|_| None).unwrap(), 3.0);
    }

    #[test]
    fn pow_operator() {
        let e = Expr::Bin(
            Box::new(Expr::Num(2.0)),
            BinOp::Pow,
            Box::new(Expr::Num(10.0)),
        );
        assert_eq!(e.eval(&|_| None).unwrap(), 1024.0);
    }
}
