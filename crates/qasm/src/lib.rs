//! OpenQASM 2.0 frontend for the SV-Sim reproduction.
//!
//! The paper's frontend stack (§3.3) accepts OpenQASM as the common IR
//! emitted by Qiskit, Cirq, ProjectQ and friends. This crate provides the
//! full pipeline: [`lexer`] → [`parser`] → [`elaborate`], producing the flat
//! [`svsim_ir::Circuit`] the backends execute. `qelib1.inc` resolves to the
//! natively implemented ISA gates of Table 1.

pub mod ast;
pub mod elaborate;
pub mod emit;
pub mod lexer;
pub mod parser;

pub use elaborate::elaborate as elaborate_program;
pub use elaborate::parse_circuit;
pub use emit::to_qasm;
pub use parser::parse;
