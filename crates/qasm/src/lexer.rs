//! OpenQASM 2.0 lexer.

use svsim_types::{SvError, SvResult};

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

/// OpenQASM 2.0 token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(u64),
    /// Real literal.
    Real(f64),
    /// String literal (include paths).
    Str(String),
    /// `OPENQASM` keyword.
    OpenQasm,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `->`
    Arrow,
    /// `==`
    EqEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Real(v) => format!("real `{v}`"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::OpenQasm => "`OPENQASM`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::Semicolon => "`;`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Caret => "`^`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// Tokenize OpenQASM source.
///
/// # Errors
/// [`SvError::Parse`] on unrecognized characters or malformed literals.
pub fn tokenize(src: &str) -> SvResult<Vec<Token>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;
    let err = |line: usize, col: usize, msg: String| SvError::Parse { line, col, msg };

    while i < bytes.len() {
        let c = bytes[i];
        let (tl, tc) = (line, col);
        let advance = |n: usize, i: &mut usize, col: &mut usize| {
            *i += n;
            *col += n;
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => advance(1, &mut i, &mut col),
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' | ')' | '[' | ']' | '{' | '}' | ';' | ',' | '+' | '*' | '/' | '^' => {
                let kind = match c {
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '[' => TokenKind::LBracket,
                    ']' => TokenKind::RBracket,
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    ';' => TokenKind::Semicolon,
                    ',' => TokenKind::Comma,
                    '+' => TokenKind::Plus,
                    '*' => TokenKind::Star,
                    '/' => TokenKind::Slash,
                    _ => TokenKind::Caret,
                };
                out.push(Token {
                    kind,
                    line: tl,
                    col: tc,
                });
                advance(1, &mut i, &mut col);
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '>' {
                    out.push(Token {
                        kind: TokenKind::Arrow,
                        line: tl,
                        col: tc,
                    });
                    advance(2, &mut i, &mut col);
                } else {
                    out.push(Token {
                        kind: TokenKind::Minus,
                        line: tl,
                        col: tc,
                    });
                    advance(1, &mut i, &mut col);
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    out.push(Token {
                        kind: TokenKind::EqEq,
                        line: tl,
                        col: tc,
                    });
                    advance(2, &mut i, &mut col);
                } else {
                    return Err(err(tl, tc, "expected `==`".into()));
                }
            }
            '"' => {
                let mut s = String::new();
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != '"' {
                    if bytes[j] == '\n' {
                        return Err(err(tl, tc, "unterminated string".into()));
                    }
                    s.push(bytes[j]);
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(err(tl, tc, "unterminated string".into()));
                }
                let n = j + 1 - i;
                out.push(Token {
                    kind: TokenKind::Str(s),
                    line: tl,
                    col: tc,
                });
                advance(n, &mut i, &mut col);
            }
            c if c.is_ascii_digit() || c == '.' => {
                let mut j = i;
                let mut has_dot = false;
                let mut has_exp = false;
                while j < bytes.len() {
                    let d = bytes[j];
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.' && !has_dot && !has_exp {
                        has_dot = true;
                        j += 1;
                    } else if (d == 'e' || d == 'E') && !has_exp && j > i {
                        has_exp = true;
                        j += 1;
                        if j < bytes.len() && (bytes[j] == '+' || bytes[j] == '-') {
                            j += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text: String = bytes[i..j].iter().collect();
                let kind = if has_dot || has_exp {
                    TokenKind::Real(
                        text.parse::<f64>()
                            .map_err(|_| err(tl, tc, format!("bad real literal `{text}`")))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse::<u64>()
                            .map_err(|_| err(tl, tc, format!("bad integer literal `{text}`")))?,
                    )
                };
                let n = j - i;
                out.push(Token {
                    kind,
                    line: tl,
                    col: tc,
                });
                advance(n, &mut i, &mut col);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let text: String = bytes[i..j].iter().collect();
                let kind = if text == "OPENQASM" {
                    TokenKind::OpenQasm
                } else {
                    TokenKind::Ident(text)
                };
                let n = j - i;
                out.push(Token {
                    kind,
                    line: tl,
                    col: tc,
                });
                advance(n, &mut i, &mut col);
            }
            other => {
                return Err(err(tl, tc, format!("unexpected character `{other}`")));
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_program() {
        let ks = kinds("OPENQASM 2.0;\nqreg q[3];");
        assert_eq!(
            ks,
            vec![
                TokenKind::OpenQasm,
                TokenKind::Real(2.0),
                TokenKind::Semicolon,
                TokenKind::Ident("qreg".into()),
                TokenKind::Ident("q".into()),
                TokenKind::LBracket,
                TokenKind::Int(3),
                TokenKind::RBracket,
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("// a comment\nh q; // trailing");
        assert_eq!(ks.len(), 4); // h, q, ;, eof
    }

    #[test]
    fn operators_and_arrow() {
        let ks = kinds("a->b == c - 1");
        assert!(ks.contains(&TokenKind::Arrow));
        assert!(ks.contains(&TokenKind::EqEq));
        assert!(ks.contains(&TokenKind::Minus));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("3.25")[0], TokenKind::Real(3.25));
        assert_eq!(kinds("1e-3")[0], TokenKind::Real(1e-3));
        assert_eq!(kinds("2.5e2")[0], TokenKind::Real(250.0));
    }

    #[test]
    fn strings() {
        assert_eq!(
            kinds("include \"qelib1.inc\";")[1],
            TokenKind::Str("qelib1.inc".into())
        );
    }

    #[test]
    fn error_locations() {
        let e = tokenize("qreg q[2];\n  @").unwrap_err();
        match e {
            SvError::Parse { line, col, .. } => {
                assert_eq!(line, 2);
                assert_eq!(col, 3);
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn unterminated_string() {
        assert!(tokenize("include \"abc").is_err());
    }
}
