//! Engine integration tests: results must be indistinguishable from direct
//! simulator use, admission must reject rather than block, and shutdown
//! must be orderly with work in flight.

use std::sync::Arc;
use std::time::Duration;
use svsim_core::{measure, ParamCircuit, ParamValue, SimConfig, Simulator};
use svsim_engine::{
    Engine, EngineConfig, JobError, JobOutput, JobRequest, JobSpec, Priority, SubmitError,
    SweepReturn,
};
use svsim_ir::{Circuit, GateKind};
use svsim_types::SvRng;

fn ghz_with_measure(n: u32) -> Circuit {
    let mut c = Circuit::with_cbits(n, 2);
    c.apply(GateKind::H, &[0], &[]).unwrap();
    for q in 1..n {
        c.apply(GateKind::CX, &[q - 1, q], &[]).unwrap();
    }
    c.measure(0, 0).unwrap();
    c.measure(n - 1, 1).unwrap();
    c
}

fn ansatz(n: u32, layers: u32) -> ParamCircuit {
    let mut t = ParamCircuit::new(n);
    let mut var = 0usize;
    for q in 0..n {
        t.push_fixed(GateKind::H, &[q], &[]).unwrap();
    }
    for _ in 0..layers {
        for q in 0..n {
            t.push(GateKind::RY, &[q], &[ParamValue::Var(var)]).unwrap();
            var += 1;
        }
        for q in 0..n {
            t.push_fixed(GateKind::CX, &[q, (q + 1) % n], &[]).unwrap();
        }
    }
    t
}

/// Engine one-shot results — classical bits, final state, and sample
/// histograms — must be bit-identical to a directly driven `Simulator`
/// with the same config, across backends, even when instances are pooled
/// and reused between jobs.
#[test]
fn one_shot_results_match_direct_simulator() {
    let engine = Engine::start(EngineConfig::default().with_workers(2));
    let circuit = Arc::new(ghz_with_measure(5));
    let configs = [
        SimConfig::single_device().with_seed(101),
        SimConfig::scale_up(2).with_seed(202),
        SimConfig::scale_out(4).with_seed(303),
    ];
    // Two rounds so the second round exercises pooled (reused) instances.
    for round in 0..2 {
        for config in configs {
            let handle = engine
                .submit(JobRequest::new(JobSpec::OneShot {
                    circuit: Arc::clone(&circuit),
                    config,
                    shots: 64,
                    return_state: true,
                }))
                .unwrap();
            let JobOutput::OneShot {
                summary,
                state,
                samples,
            } = handle.wait().unwrap()
            else {
                panic!("one-shot output expected");
            };

            let mut direct = Simulator::new(5, config).unwrap();
            let direct_summary = direct.run(&circuit).unwrap();
            assert_eq!(
                summary.cbits, direct_summary.cbits,
                "round {round}: classical bits must match direct run"
            );
            let state = state.expect("state requested");
            assert_eq!(state.re(), direct.state().re(), "round {round}: re");
            assert_eq!(state.im(), direct.state().im(), "round {round}: im");

            let mut direct_hist = std::collections::BTreeMap::new();
            for s in direct.sample(64) {
                *direct_hist.entry(s).or_insert(0usize) += 1;
            }
            assert_eq!(samples.unwrap(), direct_hist, "round {round}: samples");
        }
    }
    let metrics = engine.shutdown();
    assert_eq!(metrics.completed, 6);
    assert_eq!(metrics.failed, 0);
}

/// Sweep results must be bit-identical to running the compiled template
/// directly, and numerically identical to full re-synthesis per trial.
#[test]
fn sweep_results_match_direct_template() {
    let template = ansatz(5, 3);
    let n_vars = template.n_vars();
    let engine = Engine::start(EngineConfig::default().with_workers(2).with_max_batch(4));
    let id = engine.register_template("ansatz", &template).unwrap();

    let mut rng = SvRng::seed_from_u64(77);
    let points: Vec<Vec<f64>> = (0..12)
        .map(|_| (0..n_vars).map(|_| rng.range_f64(-2.0, 2.0)).collect())
        .collect();
    let handles: Vec<_> = points
        .iter()
        .map(|p| {
            engine
                .submit(JobRequest::new(JobSpec::Sweep {
                    template: id,
                    params: p.clone(),
                    returning: SweepReturn::State,
                }))
                .unwrap()
        })
        .collect();

    let mut compiled = template.compile().unwrap();
    for (h, p) in handles.into_iter().zip(&points) {
        let JobOutput::Sweep { state, .. } = h.wait().unwrap() else {
            panic!("sweep output expected");
        };
        let state = state.expect("state requested");
        let direct = compiled.run(p).unwrap();
        assert_eq!(state.re(), direct.re(), "engine must be bit-identical");
        assert_eq!(state.im(), direct.im());
    }
    let metrics = engine.shutdown();
    assert_eq!(metrics.completed, 12);
    assert!(
        metrics.batches <= 12,
        "batching must coalesce, not multiply"
    );
}

/// A pre-fused template serves sweeps bit-identically to the unfused
/// master while collapsing amplitude passes — the fused micro-ops keep
/// their symbolic angle slots, so only payloads differ between members.
#[test]
fn fused_template_sweeps_are_bit_identical_to_unfused() {
    let template = ansatz(5, 3);
    let n_vars = template.n_vars();
    let engine = Engine::start(EngineConfig::default().with_workers(2).with_max_batch(4));
    let plain_id = engine.register_template("ansatz", &template).unwrap();
    let fused_id = engine
        .register_template_fused("ansatz_fused", &template, 3)
        .unwrap();

    let mut fused_master = template.compile().unwrap();
    fused_master.fuse(3);
    assert!(
        fused_master.n_passes() < fused_master.n_source_kernels(),
        "the ansatz must actually fuse"
    );

    let mut rng = SvRng::seed_from_u64(41);
    let points: Vec<Vec<f64>> = (0..8)
        .map(|_| (0..n_vars).map(|_| rng.range_f64(-2.0, 2.0)).collect())
        .collect();
    let submit = |id, p: &Vec<f64>| {
        engine
            .submit(JobRequest::new(JobSpec::Sweep {
                template: id,
                params: p.clone(),
                returning: SweepReturn::State,
            }))
            .unwrap()
    };
    let plain: Vec<_> = points.iter().map(|p| submit(plain_id, p)).collect();
    let fused: Vec<_> = points.iter().map(|p| submit(fused_id, p)).collect();
    for (hp, hf) in plain.into_iter().zip(fused) {
        let JobOutput::Sweep { state: sp, .. } = hp.wait().unwrap() else {
            panic!("sweep output expected");
        };
        let JobOutput::Sweep { state: sf, .. } = hf.wait().unwrap() else {
            panic!("sweep output expected");
        };
        let (sp, sf) = (sp.unwrap(), sf.unwrap());
        assert_eq!(sp.re(), sf.re(), "fused sweep must be bit-identical");
        assert_eq!(sp.im(), sf.im());
    }
    let metrics = engine.shutdown();
    assert_eq!(metrics.completed, 16);
    assert_eq!(metrics.failed, 0);
}

/// ExpZ sweep returns must equal computing the expectation on the returned
/// state directly.
#[test]
fn expz_return_matches_state_return() {
    let template = ansatz(4, 2);
    let engine = Engine::start(EngineConfig::default().with_workers(1));
    let id = engine.register_template("ansatz", &template).unwrap();
    let params: Vec<f64> = (0..template.n_vars()).map(|i| 0.1 * i as f64).collect();
    let mask = 0b1010u64;

    let by_value = engine
        .submit(JobRequest::new(JobSpec::Sweep {
            template: id,
            params: params.clone(),
            returning: SweepReturn::ExpZ(mask),
        }))
        .unwrap();
    let by_state = engine
        .submit(JobRequest::new(JobSpec::Sweep {
            template: id,
            params,
            returning: SweepReturn::State,
        }))
        .unwrap();
    let JobOutput::Sweep { value, .. } = by_value.wait().unwrap() else {
        panic!()
    };
    let JobOutput::Sweep { state, .. } = by_state.wait().unwrap() else {
        panic!()
    };
    let expected = measure::expval_z_mask(&state.unwrap(), mask);
    assert_eq!(
        value.unwrap(),
        expected,
        "ExpZ must be computed on the result state"
    );
    let _ = engine.shutdown();
}

/// A full queue must reject immediately (never block), and the engine must
/// keep serving once the backlog drains.
#[test]
fn full_queue_rejects_submissions() {
    // One worker, capacity 2: park the worker on a slow-ish job, then fill.
    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(1)
            .with_queue_capacity(2),
    );
    let slow = Arc::new(ghz_with_measure(16));
    let fast = Arc::new(ghz_with_measure(3));
    let config = SimConfig::single_device();
    let make = |c: &Arc<Circuit>| {
        JobRequest::new(JobSpec::OneShot {
            circuit: Arc::clone(c),
            config,
            shots: 0,
            return_state: false,
        })
    };

    // Saturate: the worker takes jobs off the queue as it runs them, so
    // keep submitting until one sticks as a rejection.
    let mut accepted = vec![engine.submit(make(&slow)).unwrap()];
    let mut rejected = 0u64;
    while rejected == 0 {
        match engine.submit(make(&slow)) {
            Ok(h) => accepted.push(h),
            Err(SubmitError::QueueFull) => rejected += 1,
            Err(e) => panic!("unexpected admission error: {e}"),
        }
        assert!(
            accepted.len() < 64,
            "queue of capacity 2 must reject under sustained load"
        );
    }

    // Accepted jobs complete; the engine recovers and serves new work.
    for h in accepted.iter().rev() {
        assert!(h.wait().is_ok());
    }
    let h = engine.submit(make(&fast)).unwrap();
    assert!(h.wait().is_ok());
    let metrics = engine.shutdown();
    assert_eq!(metrics.rejected, rejected);
    assert_eq!(metrics.failed, 0);
}

/// Draining shutdown must run every queued job to completion.
#[test]
fn drain_shutdown_completes_in_flight_jobs() {
    let template = ansatz(6, 4);
    let engine = Engine::start(EngineConfig::default().with_workers(2).with_max_batch(8));
    let id = engine.register_template("ansatz", &template).unwrap();
    let handles: Vec<_> = (0..40)
        .map(|i| {
            engine
                .submit(JobRequest::new(JobSpec::Sweep {
                    template: id,
                    params: vec![0.01 * i as f64; template.n_vars()],
                    returning: SweepReturn::ExpZ(1),
                }))
                .unwrap()
        })
        .collect();
    // Shut down immediately — most jobs are still queued.
    let metrics = engine.shutdown();
    assert_eq!(metrics.completed, 40, "drain must finish every queued job");
    assert_eq!(metrics.shutdown_dropped, 0);
    for h in handles {
        assert!(h.wait().is_ok(), "every handle must hold a result");
    }
}

/// Hard shutdown must fail queued jobs with `Shutdown` and still publish a
/// result on every handle (no waiter left hanging).
#[test]
fn hard_shutdown_fails_queued_jobs() {
    let template = ansatz(6, 4);
    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(1)
            .with_max_batch(1)
            .with_queue_capacity(256),
    );
    let id = engine.register_template("ansatz", &template).unwrap();
    let handles: Vec<_> = (0..60)
        .map(|i| {
            engine
                .submit(JobRequest::new(JobSpec::Sweep {
                    template: id,
                    params: vec![0.02 * i as f64; template.n_vars()],
                    returning: SweepReturn::ExpZ(1),
                }))
                .unwrap()
        })
        .collect();
    let metrics = engine.shutdown_now();
    let mut completed = 0u64;
    let mut dropped = 0u64;
    for h in handles {
        match h.wait() {
            Ok(_) => completed += 1,
            Err(JobError::Shutdown) => dropped += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(completed + dropped, 60, "every handle resolves");
    assert_eq!(metrics.completed, completed);
    assert_eq!(metrics.shutdown_dropped, dropped);
    assert!(dropped > 0, "hard shutdown should catch queued jobs");
}

/// Cancellation through the handle drops queued jobs before execution.
#[test]
fn cancelled_jobs_are_dropped_at_dequeue() {
    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(1)
            .with_queue_capacity(64),
    );
    let slow = Arc::new(ghz_with_measure(16));
    let config = SimConfig::single_device();
    // Occupy the worker, then queue a victim and cancel it.
    let blocker = engine
        .submit(JobRequest::new(JobSpec::OneShot {
            circuit: Arc::clone(&slow),
            config,
            shots: 0,
            return_state: false,
        }))
        .unwrap();
    let victim = engine
        .submit(JobRequest::new(JobSpec::OneShot {
            circuit: Arc::clone(&slow),
            config,
            shots: 0,
            return_state: false,
        }))
        .unwrap();
    victim.cancel();
    assert!(matches!(victim.wait(), Ok(_) | Err(JobError::Cancelled)));
    assert!(blocker.wait().is_ok());
    let _ = engine.shutdown();
}

/// An already-expired deadline fails the job with `Expired`.
#[test]
fn expired_deadline_fails_job() {
    let engine = Engine::start(EngineConfig::default().with_workers(1));
    let circuit = Arc::new(ghz_with_measure(3));
    let request = JobRequest::new(JobSpec::OneShot {
        circuit,
        config: SimConfig::single_device(),
        shots: 0,
        return_state: false,
    })
    .with_deadline_in(Duration::ZERO);
    // Give the deadline a moment to lapse before the worker reaches it.
    std::thread::sleep(Duration::from_millis(5));
    let handle = engine.submit(request).unwrap();
    match handle.wait() {
        Err(JobError::Expired) => {}
        Ok(_) => {
            // Racy by nature: the worker may have dequeued before expiry on
            // an idle engine — but only if it started immediately.
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
    let _ = engine.shutdown();
}

/// Sweep validation happens at admission: unknown templates and short
/// parameter vectors never enter the queue.
#[test]
fn sweep_admission_validates_template_and_params() {
    let template = ansatz(4, 1);
    let engine = Engine::start(EngineConfig::default().with_workers(1));
    let id = engine.register_template("ansatz", &template).unwrap();

    let bogus = svsim_engine::TemplateId(999);
    assert!(matches!(
        engine.submit(JobRequest::new(JobSpec::Sweep {
            template: bogus,
            params: vec![0.0; 16],
            returning: SweepReturn::ExpZ(1),
        })),
        Err(SubmitError::UnknownTemplate(_))
    ));
    assert!(matches!(
        engine.submit(JobRequest::new(JobSpec::Sweep {
            template: id,
            params: vec![0.0; 1],
            returning: SweepReturn::ExpZ(1),
        })),
        Err(SubmitError::BadParamCount { .. })
    ));
    let metrics = engine.shutdown();
    assert_eq!(metrics.submitted, 0);
}

/// High-priority jobs dequeue ahead of queued low-priority work.
#[test]
fn priority_orders_the_backlog() {
    let template = ansatz(4, 1);
    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(1)
            .with_max_batch(1)
            .with_queue_capacity(256),
    );
    let id = engine.register_template("ansatz", &template).unwrap();
    let slow = Arc::new(ghz_with_measure(16));
    // Park the worker so the backlog builds in the queue.
    let blocker = engine
        .submit(JobRequest::new(JobSpec::OneShot {
            circuit: slow,
            config: SimConfig::single_device(),
            shots: 0,
            return_state: false,
        }))
        .unwrap();
    let sweep = |prio: Priority| {
        JobRequest::new(JobSpec::Sweep {
            template: id,
            params: vec![0.1; template.n_vars()],
            returning: SweepReturn::ExpZ(1),
        })
        .with_priority(prio)
    };
    let low = engine.submit(sweep(Priority::Low)).unwrap();
    let high = engine.submit(sweep(Priority::High)).unwrap();
    let _ = blocker.wait();
    // The high job must finish no later than the low one: wait on low, then
    // high must already be resolved.
    let _ = low.wait();
    assert!(
        high.try_take().is_some(),
        "high priority must not queue behind low"
    );
    let _ = engine.shutdown();
}

/// The metrics snapshot must account for every job and record batching.
#[test]
fn metrics_account_for_all_jobs() {
    let template = ansatz(5, 2);
    let engine = Engine::start(EngineConfig::default().with_workers(2).with_max_batch(8));
    let id = engine.register_template("ansatz", &template).unwrap();
    let handles: Vec<_> = (0..24)
        .map(|i| {
            engine
                .submit(JobRequest::new(JobSpec::Sweep {
                    template: id,
                    params: vec![0.05 * i as f64; template.n_vars()],
                    returning: SweepReturn::ExpZ(3),
                }))
                .unwrap()
        })
        .collect();
    for h in handles.iter().rev() {
        let _ = h.wait();
    }
    let metrics = engine.shutdown();
    assert_eq!(metrics.submitted, 24);
    assert_eq!(metrics.completed, 24);
    assert_eq!(metrics.finished(), 24);
    assert_eq!(metrics.in_flight(), 0);
    assert_eq!(metrics.batched_jobs, 24);
    assert!(metrics.batches <= 24);
    assert!(metrics.mean_batch_size() >= 1.0);
    assert_eq!(metrics.queue_wait.count(), 24);
    assert_eq!(metrics.execution.count(), 24);
    assert!(metrics.pool_reused + metrics.pool_created > 0);
}

/// Scale-out one-shots must surface SHMEM traffic in the engine metrics.
#[test]
fn distributed_jobs_aggregate_traffic() {
    let engine = Engine::start(EngineConfig::default().with_workers(1));
    let circuit = Arc::new(ghz_with_measure(6));
    let h = engine
        .submit(JobRequest::new(JobSpec::OneShot {
            circuit,
            config: SimConfig::scale_out(4),
            shots: 0,
            return_state: false,
        }))
        .unwrap();
    assert!(h.wait().is_ok());
    let metrics = engine.shutdown();
    assert!(
        metrics.traffic.total_ops() > 0,
        "scale-out GHZ must move amplitudes across PEs"
    );
}

/// Remapped and naive scale-out jobs alternating on ONE pooled instance:
/// every result must be bit-identical to a direct simulator with the same
/// config, and the engine must credit the communication the remap avoided.
#[test]
fn remapped_jobs_share_pooled_instances_and_credit_savings() {
    let engine = Engine::start(EngineConfig::default().with_workers(1));
    // Deep enough on the partition-index qubits that one relabeling (plus
    // the identity restore before the measure) beats word-level traffic.
    let circuit = {
        let mut c = Circuit::with_cbits(5, 1);
        for q in 0..5 {
            c.apply(GateKind::H, &[q], &[]).unwrap();
        }
        for layer in 0..4 {
            c.apply(GateKind::RX, &[4], &[0.2 + 0.1 * f64::from(layer)])
                .unwrap();
            c.apply(GateKind::T, &[4], &[]).unwrap();
        }
        c.measure(0, 0).unwrap();
        Arc::new(c)
    };
    let naive = SimConfig::scale_out(4).with_seed(9);
    let remapped = naive.with_remap();
    for (round, config) in [naive, remapped, naive, remapped].into_iter().enumerate() {
        let handle = engine
            .submit(JobRequest::new(JobSpec::OneShot {
                circuit: Arc::clone(&circuit),
                config,
                shots: 0,
                return_state: true,
            }))
            .unwrap();
        let JobOutput::OneShot { summary, state, .. } = handle.wait().unwrap() else {
            panic!("one-shot output expected");
        };
        let mut direct = Simulator::new(5, config).unwrap();
        let direct_summary = direct.run(&circuit).unwrap();
        assert_eq!(summary.cbits, direct_summary.cbits, "round {round}");
        assert_eq!(
            summary.remap_swaps, direct_summary.remap_swaps,
            "round {round}: pooled reuse must not leak the remap setting"
        );
        let state = state.expect("state requested");
        assert_eq!(state.re(), direct.state().re(), "round {round}: re");
        assert_eq!(state.im(), direct.state().im(), "round {round}: im");
    }
    let metrics = engine.shutdown();
    assert_eq!(metrics.completed, 4);
    assert_eq!(metrics.pool_created, 1, "one instance serves all four jobs");
    assert!(
        metrics.remote_bytes_saved > 0,
        "remapped jobs must record avoided communication"
    );
}
