//! Pipeline-model integration tests: topological drain, stage-boundary
//! cancellation/deadline re-checks, bounded-stage backpressure, the
//! in-flight memory budget, legacy-model parity, and LIFO scheduling.

use std::sync::Arc;
use std::time::{Duration, Instant};
use svsim_core::{ParamCircuit, ParamValue, SimConfig, Simulator};
use svsim_engine::{
    AllocMode, Engine, EngineConfig, ExecutionModel, JobError, JobOutput, JobRequest, JobSpec,
    MetricsSnapshot, SchedMode, SubmitError, SweepReturn,
};
use svsim_ir::{Circuit, GateKind};

fn ghz_with_measure(n: u32) -> Circuit {
    let mut c = Circuit::with_cbits(n, 2);
    c.apply(GateKind::H, &[0], &[]).unwrap();
    for q in 1..n {
        c.apply(GateKind::CX, &[q - 1, q], &[]).unwrap();
    }
    c.measure(0, 0).unwrap();
    c.measure(n - 1, 1).unwrap();
    c
}

fn ansatz(n: u32, layers: u32) -> ParamCircuit {
    let mut t = ParamCircuit::new(n);
    let mut var = 0usize;
    for q in 0..n {
        t.push_fixed(GateKind::H, &[q], &[]).unwrap();
    }
    for _ in 0..layers {
        for q in 0..n {
            t.push(GateKind::RY, &[q], &[ParamValue::Var(var)]).unwrap();
            var += 1;
        }
        for q in 0..n {
            t.push_fixed(GateKind::CX, &[q, (q + 1) % n], &[]).unwrap();
        }
    }
    t
}

/// A wide, deep circuit whose execution parks the single executor for
/// hundreds of milliseconds (22 qubits x ~280 gates, ~1.2e9 amplitude
/// updates) — orders of magnitude longer than the microsecond-scale
/// submissions and metric polls the tests perform while it runs.
fn deep_blocker() -> Circuit {
    let mut c = Circuit::with_cbits(22, 1);
    for q in 0..22 {
        c.apply(GateKind::H, &[q], &[]).unwrap();
    }
    for layer in 0..12 {
        for q in 0..22 {
            c.apply(GateKind::RY, &[q], &[0.05 + 0.01 * f64::from(layer)])
                .unwrap();
        }
    }
    c.measure(0, 0).unwrap();
    c
}

/// Current depth of the named stage queue.
fn depth(m: &MetricsSnapshot, name: &str) -> usize {
    m.stages
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no stage named {name}"))
        .depth
}

/// Lifetime pop count of the named stage queue.
fn popped(m: &MetricsSnapshot, name: &str) -> u64 {
    m.stages
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no stage named {name}"))
        .popped
}

/// Spin (bounded) until the live metrics satisfy `pred`. The pipeline's
/// movers are separate threads, so on a loaded machine a packet takes a
/// few scheduler quanta to reach its boundary; polling the snapshot is
/// the only race-free way to observe "job X is parked at stage Y".
fn wait_for(engine: &Engine, what: &str, pred: impl Fn(&MetricsSnapshot) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pred(&engine.metrics()) {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

fn one_shot(circuit: &Arc<Circuit>, config: SimConfig) -> JobRequest {
    JobRequest::new(JobSpec::OneShot {
        circuit: Arc::clone(circuit),
        config,
        shots: 0,
        return_state: false,
    })
}

/// Draining shutdown must flush every stage in topological order: jobs
/// parked in the admit queue (behind a blocked compile stage) and in the
/// execute queue all run to completion — nothing is dropped.
#[test]
fn drain_flushes_jobs_parked_at_every_stage() {
    // Tiny stages + one worker on a slow blocker: accepted jobs pile up
    // across admit (2) + compile-in-hand (1) + execute (2) + executor (1).
    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(1)
            .with_max_batch(1)
            .with_stage_capacity(2),
    );
    let slow = Arc::new(deep_blocker());
    let fast = Arc::new(ghz_with_measure(4));
    let config = SimConfig::single_device();
    let mut accepted = vec![engine.submit(one_shot(&slow, config)).unwrap()];
    // Only once the executor holds the blocker do later submissions pile
    // up behind it instead of draining straight through.
    wait_for(&engine, "the executor to pick up the blocker", |m| {
        popped(m, "execute") == 1
    });
    // Fill until truly saturated: QueueFull is only final once both
    // bounded queues sit at capacity — earlier rejections just mean the
    // admit->execute mover hasn't been scheduled yet to make room.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match engine.submit(one_shot(&fast, config)) {
            Ok(h) => accepted.push(h),
            Err(SubmitError::QueueFull) => {
                let m = engine.metrics();
                if depth(&m, "admit") == 2 && depth(&m, "execute") == 2 {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "pipeline never saturated: the blocker drained too early"
                );
                std::thread::yield_now();
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
        assert!(accepted.len() < 64, "capacity-2 stages must backpressure");
    }
    assert!(
        accepted.len() >= 3,
        "the pipeline should hold several jobs in flight"
    );
    // Shut down while jobs sit mid-pipeline: all of them must complete.
    let metrics = engine.shutdown();
    assert_eq!(metrics.completed, accepted.len() as u64);
    assert_eq!(metrics.shutdown_dropped, 0);
    for h in accepted {
        assert!(h.wait().is_ok(), "drained jobs must publish results");
    }
    let admit = metrics
        .stages
        .iter()
        .find(|s| s.name == "admit")
        .expect("admit stage snapshot");
    assert_eq!(admit.pushed, metrics.completed, "every job passed admit");
    assert_eq!(admit.popped, admit.pushed, "drain leaves admit empty");
    assert_eq!(admit.depth, 0);
}

/// Cancellation and deadlines are re-checked at each stage boundary: a job
/// cancelled while parked in the admit or execute queue is dropped at its
/// next hop, and a deadline that lapses between compile and execute fails
/// the job with `Expired` at the execute hop.
#[test]
fn cancellation_and_deadline_are_rechecked_at_stage_hops() {
    // Capacity-1 stages pin each victim to a known boundary: v1 in the
    // execute queue, v2 in the compile stage's blocked push, v3 in admit.
    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(1)
            .with_max_batch(1)
            .with_stage_capacity(1),
    );
    let slow = Arc::new(deep_blocker());
    let fast = Arc::new(ghz_with_measure(4));
    let config = SimConfig::single_device();
    let blocker = engine.submit(one_shot(&slow, config)).unwrap();
    // The blocker must reach the executor before the victims arrive.
    wait_for(&engine, "the executor to pick up the blocker", |m| {
        popped(m, "execute") == 1
    });
    // Park each victim at its boundary before the next arrives: v1 in
    // the execute queue, v2 in the mover's blocked push (popped from
    // admit, refused by the full execute queue), v3 in the admit queue.
    let v1 = engine.submit(one_shot(&fast, config)).unwrap();
    wait_for(&engine, "v1 to park in the execute queue", |m| {
        depth(m, "execute") == 1
    });
    let v2 = engine
        .submit(one_shot(&fast, config).with_deadline_in(Duration::from_millis(1)))
        .unwrap();
    wait_for(&engine, "the mover to take v2 in hand", |m| {
        popped(m, "admit") == 3
    });
    let v3 = engine.submit(one_shot(&fast, config)).unwrap();
    v1.cancel();
    v3.cancel();
    assert_eq!(
        engine.metrics().completed,
        0,
        "the blocker must still be executing when the victims are cancelled"
    );
    assert!(blocker.wait().is_ok());
    assert!(matches!(v1.wait(), Err(JobError::Cancelled)));
    assert!(matches!(v2.wait(), Err(JobError::Expired)));
    assert!(matches!(v3.wait(), Err(JobError::Cancelled)));
    let metrics = engine.shutdown();
    assert_eq!(metrics.completed, 1);
    assert_eq!(metrics.cancelled, 2);
    assert_eq!(metrics.expired, 1);
    assert_eq!(metrics.failed, 0, "dead jobs never reach execution");
}

/// A slow execute stage saturates its bounded queue; the backpressure
/// propagates upstream until admission rejects with a typed error, and the
/// per-stage metrics reflect both the rejection and the occupancy.
#[test]
fn saturated_execute_stage_rejects_at_admission() {
    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(1)
            .with_max_batch(1)
            .with_stage_capacity(2),
    );
    let slow = Arc::new(ghz_with_measure(16));
    let config = SimConfig::single_device();
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    while rejected == 0 {
        match engine.submit(one_shot(&slow, config)) {
            Ok(h) => accepted.push(h),
            Err(SubmitError::QueueFull) => rejected += 1,
            Err(e) => panic!("unexpected admission error: {e}"),
        }
        assert!(
            accepted.len() < 64,
            "stage capacity 2 must reject under sustained load"
        );
    }
    let mid = engine.metrics();
    let admit = mid
        .stages
        .iter()
        .find(|s| s.name == "admit")
        .expect("admit stage snapshot");
    assert!(
        admit.rejected >= 1,
        "the admit queue recorded the rejection"
    );
    assert!(
        admit.high_water >= 1,
        "queued depth must register in the high-water mark"
    );
    assert!(
        mid.to_string().contains("stage admit:"),
        "pipeline metrics must render per-stage lines"
    );
    for h in accepted {
        assert!(h.wait().is_ok(), "accepted jobs still complete");
    }
    let metrics = engine.shutdown();
    assert_eq!(metrics.rejected, rejected);
    assert_eq!(metrics.failed, 0);
    let exec = metrics
        .stages
        .iter()
        .find(|s| s.name == "execute")
        .expect("execute stage snapshot");
    assert!(exec.high_water >= 1, "the execute queue actually filled");
}

/// Under `AllocMode::LimitMemory`, total in-flight state-vector bytes never
/// exceed the cap across 100 mixed-size jobs, and a job too large for the
/// cap on its own is refused outright with the typed error.
#[test]
fn limit_memory_caps_in_flight_bytes() {
    const CAP: u64 = 64 * 1024; // exactly one 12-qubit register
    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(2)
            .with_alloc(AllocMode::LimitMemory(CAP)),
    );
    let config = SimConfig::single_device();
    let circuits: Vec<Arc<Circuit>> = (6..=12).map(|n| Arc::new(ghz_with_measure(n))).collect();
    let mut handles = Vec::new();
    for i in 0..100usize {
        let circuit = &circuits[i % circuits.len()];
        let mut tries = 0u32;
        let h = loop {
            match engine.submit(one_shot(circuit, config)) {
                Ok(h) => break h,
                Err(SubmitError::MemoryExceeded { .. } | SubmitError::QueueFull) => {
                    tries += 1;
                    assert!(tries < 200_000, "admission starved under the byte cap");
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        };
        handles.push(h);
        if i % 10 == 0 {
            let m = engine.metrics();
            assert!(
                m.mem_in_flight_bytes <= CAP,
                "in-flight bytes {} over the {CAP}-byte cap",
                m.mem_in_flight_bytes
            );
            assert!(m.mem_high_water_bytes <= CAP);
        }
    }
    // A 13-qubit register (128 KiB) can never fit under the cap.
    let oversized = Arc::new(ghz_with_measure(13));
    match engine.submit(one_shot(&oversized, config)) {
        Err(SubmitError::MemoryExceeded { needed, limit }) => {
            assert_eq!(needed, 128 * 1024);
            assert_eq!(limit, CAP);
        }
        other => panic!("oversized job must be refused, got {other:?}"),
    }
    for h in handles {
        assert!(h.wait().is_ok(), "every capped job still completes");
    }
    let metrics = engine.shutdown();
    assert_eq!(metrics.completed, 100);
    assert_eq!(metrics.mem_in_flight_bytes, 0, "all leases released");
    assert!(metrics.mem_high_water_bytes > 0);
    assert!(metrics.mem_high_water_bytes <= CAP);
    assert_eq!(metrics.mem_limit_bytes, Some(CAP));
    assert!(metrics.to_string().contains("memory: in_flight_bytes=0"));
}

/// The legacy worker pool and the pipeline must produce bit-identical
/// results for the same jobs — the pipeline is a scheduling change, never
/// a numerical one.
#[test]
fn legacy_model_matches_pipeline_bit_for_bit() {
    let circuit = Arc::new(ghz_with_measure(6));
    let template = ansatz(5, 2);
    let configs = [
        SimConfig::single_device().with_seed(11),
        SimConfig::scale_up(2).with_seed(22),
        SimConfig::scale_out(4).with_seed(33),
    ];
    let run_model = |model: ExecutionModel| {
        let engine = Engine::start(EngineConfig::default().with_workers(2).with_model(model));
        let id = engine.register_template("ansatz", &template).unwrap();
        let mut states = Vec::new();
        for config in configs {
            let h = engine
                .submit(JobRequest::new(JobSpec::OneShot {
                    circuit: Arc::clone(&circuit),
                    config,
                    shots: 32,
                    return_state: true,
                }))
                .unwrap();
            let JobOutput::OneShot {
                summary,
                state,
                samples,
            } = h.wait().unwrap()
            else {
                panic!("one-shot output expected");
            };
            states.push((summary.cbits, state.unwrap(), samples.unwrap()));
        }
        let mut sweeps = Vec::new();
        for i in 0..8 {
            let h = engine
                .submit(JobRequest::new(JobSpec::Sweep {
                    template: id,
                    params: vec![0.1 * i as f64; template.n_vars()],
                    returning: SweepReturn::State,
                }))
                .unwrap();
            let JobOutput::Sweep { state, .. } = h.wait().unwrap() else {
                panic!("sweep output expected");
            };
            sweeps.push(state.unwrap());
        }
        let _ = engine.shutdown();
        (states, sweeps)
    };
    let (p_states, p_sweeps) = run_model(ExecutionModel::Pipeline);
    let (l_states, l_sweeps) = run_model(ExecutionModel::Legacy);
    for (i, ((pc, ps, ph), (lc, ls, lh))) in p_states.iter().zip(&l_states).enumerate() {
        assert_eq!(pc, lc, "config {i}: classical bits");
        assert_eq!(ps.re(), ls.re(), "config {i}: re");
        assert_eq!(ps.im(), ls.im(), "config {i}: im");
        assert_eq!(ph, lh, "config {i}: sample histogram");
    }
    for (i, (p, l)) in p_sweeps.iter().zip(&l_sweeps).enumerate() {
        assert_eq!(p.re(), l.re(), "sweep {i}: re");
        assert_eq!(p.im(), l.im(), "sweep {i}: im");
    }
    // And both match a directly driven simulator.
    let mut direct = Simulator::new(6, configs[0]).unwrap();
    let direct_summary = direct.run(&circuit).unwrap();
    assert_eq!(p_states[0].0, direct_summary.cbits);
    assert_eq!(p_states[0].1.re(), direct.state().re());
}

/// Under `SchedMode::Lifo`, the freshest same-priority submission runs
/// first once a worker frees up.
#[test]
fn lifo_runs_freshest_submission_first() {
    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(1)
            .with_max_batch(1)
            .with_sched(SchedMode::Lifo),
    );
    let slow = Arc::new(deep_blocker());
    let fast = Arc::new(ghz_with_measure(4));
    let config = SimConfig::single_device();
    let blocker = engine.submit(one_shot(&slow, config)).unwrap();
    std::thread::sleep(Duration::from_millis(10));
    let first = engine.submit(one_shot(&fast, config)).unwrap();
    // Let `first` clear the compile stage before the fresher job arrives,
    // so both sit in the execute queue in submission order.
    std::thread::sleep(Duration::from_millis(10));
    let fresh = engine.submit(one_shot(&fast, config)).unwrap();
    assert!(blocker.wait().is_ok());
    // LIFO: `fresh` executes before `first`, so once `first` resolves the
    // fresher job's result must already be published.
    assert!(first.wait().is_ok());
    assert!(
        fresh.try_take().is_some(),
        "LIFO must run the freshest submission first"
    );
    let _ = engine.shutdown();
}
