//! Robustness integration tests: injected faults, checkpoint-resuming
//! retries, quarantine degradation, and mid-sweep deadline/cancellation.
//!
//! The load-bearing property throughout is *bit-identical recovery*: a job
//! killed by an injected PE fault and retried from its last checkpoint
//! must produce exactly the state, samples, and classical bits of a
//! fault-free run.

use std::sync::Arc;
use std::time::Duration;
use svsim_core::{state_checksum, ParamCircuit, ParamValue, SimConfig, Simulator};
use svsim_engine::{
    Engine, EngineConfig, JobError, JobOutput, JobRequest, JobSpec, RetryPolicy, SubmitError,
    SweepReturn,
};
use svsim_ir::{Circuit, GateKind};
use svsim_shmem::{FaultAction, FaultPlan};
use svsim_types::PeOp;

fn ghz_with_measure(n: u32) -> Circuit {
    let mut c = Circuit::with_cbits(n, 2);
    c.apply(GateKind::H, &[0], &[]).unwrap();
    for q in 1..n {
        c.apply(GateKind::CX, &[q - 1, q], &[]).unwrap();
    }
    c.measure(0, 0).unwrap();
    c.measure(n - 1, 1).unwrap();
    c
}

fn qaoa_like(n: u32, layers: u32) -> ParamCircuit {
    let mut t = ParamCircuit::new(n);
    let mut var = 0usize;
    for q in 0..n {
        t.push_fixed(GateKind::H, &[q], &[]).unwrap();
    }
    for _ in 0..layers {
        for q in 0..n {
            t.push_fixed(GateKind::CX, &[q, (q + 1) % n], &[]).unwrap();
            t.push(GateKind::RZ, &[(q + 1) % n], &[ParamValue::Var(var)])
                .unwrap();
            t.push_fixed(GateKind::CX, &[q, (q + 1) % n], &[]).unwrap();
        }
        var += 1;
        for q in 0..n {
            t.push(GateKind::RX, &[q], &[ParamValue::Var(var)]).unwrap();
        }
        var += 1;
    }
    t
}

fn one_shot(circuit: &Arc<Circuit>, config: SimConfig) -> JobRequest {
    JobRequest::new(JobSpec::OneShot {
        circuit: Arc::clone(circuit),
        config,
        shots: 32,
        return_state: true,
    })
}

/// A scale-out one-shot killed by an injected PE fault mid-circuit must be
/// retried from its last checkpoint and finish bit-identical to a
/// fault-free run — state, checksum, classical bits, and samples.
#[test]
fn one_shot_pe_kill_recovers_bit_identically() {
    let circuit = Arc::new(ghz_with_measure(6));
    let config = SimConfig::scale_out(4)
        .with_seed(11)
        .with_checkpoint_every(2);

    // Fault-free reference.
    let mut reference = Simulator::new(6, config).unwrap();
    let ref_summary = reference.run(&circuit).unwrap();
    let ref_samples: Vec<u64> = reference.sample(32);
    let ref_checksum = state_checksum(reference.state());

    let engine = Engine::start(EngineConfig::default().with_workers(1));
    let plan = Arc::new(FaultPlan::new().with(1, PeOp::Barrier, 9, FaultAction::Kill));
    let handle = engine
        .submit(
            one_shot(&circuit, config)
                .with_retry(RetryPolicy::attempts(3).with_base_backoff(Duration::from_millis(1)))
                .with_fault_plan(Arc::clone(&plan)),
        )
        .unwrap();
    let JobOutput::OneShot {
        summary,
        state,
        samples,
    } = handle.wait().expect("retry must recover the job")
    else {
        panic!("one-shot output expected");
    };

    assert_eq!(plan.armed_remaining(), 0, "the fault must actually fire");
    let state = state.expect("state requested");
    assert_eq!(state.re(), reference.state().re());
    assert_eq!(state.im(), reference.state().im());
    assert_eq!(state_checksum(&state), ref_checksum);
    assert_eq!(summary.cbits, ref_summary.cbits);
    let mut ref_hist = std::collections::BTreeMap::new();
    for s in ref_samples {
        *ref_hist.entry(s).or_insert(0usize) += 1;
    }
    assert_eq!(
        samples.unwrap(),
        ref_hist,
        "samples must replay identically"
    );

    let metrics = engine.shutdown();
    assert!(metrics.retries >= 1, "a retry must be recorded");
    assert_eq!(metrics.recovery.count(), 1, "one recovery latency sample");
    assert!(metrics.checkpoint_bytes > 0, "checkpoints were captured");
    assert_eq!(metrics.completed, 1);
    assert_eq!(metrics.failed, 0);
}

/// Dropped-put and poisoned-barrier faults recover the same way.
#[test]
fn one_shot_drop_and_poison_recover() {
    let circuit = Arc::new(ghz_with_measure(6));
    let config = SimConfig::scale_out(2)
        .with_seed(23)
        .with_checkpoint_every(3);
    let mut reference = Simulator::new(6, config).unwrap();
    reference.run(&circuit).unwrap();
    let ref_checksum = state_checksum(reference.state());

    let engine = Engine::start(EngineConfig::default().with_workers(1));
    let plans = [
        FaultPlan::new().with(None, PeOp::Put, 3, FaultAction::Drop),
        FaultPlan::new().with(0, PeOp::Barrier, 7, FaultAction::Poison),
    ];
    for plan in plans {
        let plan = Arc::new(plan);
        let handle = engine
            .submit(
                one_shot(&circuit, config)
                    .with_retry(
                        RetryPolicy::attempts(4).with_base_backoff(Duration::from_millis(1)),
                    )
                    .with_fault_plan(Arc::clone(&plan)),
            )
            .unwrap();
        let JobOutput::OneShot { state, .. } = handle.wait().expect("recovery") else {
            panic!("one-shot output expected");
        };
        assert_eq!(plan.armed_remaining(), 0, "fault fired");
        assert_eq!(state_checksum(&state.unwrap()), ref_checksum);
    }
    let metrics = engine.shutdown();
    assert!(metrics.retries >= 2);
    assert_eq!(metrics.failed, 0);
}

/// A QAOA-style sweep job killed by an `Exec`-level fault must retry and
/// produce bit-identical results to the fault-free template execution.
#[test]
fn sweep_exec_fault_recovers_bit_identically() {
    let template = qaoa_like(5, 2);
    let params: Vec<f64> = (0..template.n_vars())
        .map(|i| 0.3 + 0.1 * i as f64)
        .collect();
    let mut compiled = template.compile().unwrap();
    let reference = compiled.run(&params).unwrap();

    // One worker so the Exec fault's PE rank (0) is this job's executor.
    let engine = Engine::start(EngineConfig::default().with_workers(1));
    let id = engine.register_template("qaoa", &template).unwrap();
    let plan = Arc::new(FaultPlan::new().with(0, PeOp::Exec, 1, FaultAction::Kill));
    let handle = engine
        .submit(
            JobRequest::new(JobSpec::Sweep {
                template: id,
                params,
                returning: SweepReturn::State,
            })
            .with_retry(RetryPolicy::attempts(2).with_base_backoff(Duration::from_millis(1)))
            .with_fault_plan(Arc::clone(&plan)),
        )
        .unwrap();
    let JobOutput::Sweep { state, .. } = handle.wait().expect("retry must recover") else {
        panic!("sweep output expected");
    };
    assert_eq!(plan.armed_remaining(), 0, "the Exec fault must fire");
    let state = state.expect("state requested");
    assert_eq!(state.re(), reference.re());
    assert_eq!(state.im(), reference.im());

    let metrics = engine.shutdown();
    assert!(metrics.retries >= 1);
    assert_eq!(metrics.recovery.count(), 1);
    assert_eq!(metrics.failed, 0);
}

/// Without retries, an injected fault fails the job with the typed
/// `PeFailed` error (not a panic, not a hang).
#[test]
fn fault_without_retry_surfaces_typed_error() {
    let circuit = Arc::new(ghz_with_measure(6));
    let config = SimConfig::scale_out(2).with_seed(5);
    let engine = Engine::start(EngineConfig::default().with_workers(1));
    let plan = Arc::new(FaultPlan::new().with(1, PeOp::Barrier, 2, FaultAction::Kill));
    let handle = engine
        .submit(one_shot(&circuit, config).with_fault_plan(plan))
        .unwrap();
    match handle.wait() {
        Err(JobError::Failed(svsim_types::SvError::PeFailed { pe: 1, .. })) => {}
        other => panic!("expected PeFailed{{pe: 1}}, got {other:?}"),
    }
    let metrics = engine.shutdown();
    assert_eq!(metrics.failed, 1);
    assert_eq!(metrics.retries, 0);
}

/// A job shape that keeps failing is quarantined: further submissions are
/// refused at admission, and a success clears the streak.
#[test]
fn repeated_failures_quarantine_the_job_shape() {
    let circuit = Arc::new(ghz_with_measure(4));
    let config = SimConfig::scale_out(2).with_seed(7);
    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(1)
            .with_quarantine_threshold(2),
    );
    // Each submission carries a fresh single-shot fault plan, so the same
    // job *shape* fails finally (no retries) every time.
    let faulty = || {
        one_shot(&circuit, config).with_fault_plan(Arc::new(FaultPlan::new().with(
            0,
            PeOp::Barrier,
            1,
            FaultAction::Kill,
        )))
    };
    for _ in 0..2 {
        let h = engine.submit(faulty()).unwrap();
        assert!(matches!(h.wait(), Err(JobError::Failed(_))));
    }
    // Streak reached the threshold: admission refuses the shape now.
    match engine.submit(faulty()) {
        Err(SubmitError::Quarantined { failures: 2 }) => {}
        other => panic!("expected quarantine, got {other:?}"),
    }
    assert_eq!(engine.quarantined_shapes(), 1);

    // A *different* shape (different seed) is unaffected and succeeds —
    // clearing is per-shape, and its success keeps its own streak empty.
    let other = one_shot(&circuit, config.with_seed(8));
    let h = engine.submit(other).unwrap();
    assert!(h.wait().is_ok());

    let metrics = engine.shutdown();
    assert_eq!(metrics.quarantined, 1, "one submission refused");
    assert_eq!(metrics.failed, 2);
}

/// A success between failures clears the consecutive-failure streak: the
/// quarantine targets persistently failing shapes, not ever-failed ones.
#[test]
fn success_clears_the_failure_streak() {
    let circuit = Arc::new(ghz_with_measure(4));
    let config = SimConfig::scale_out(2).with_seed(9);
    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(1)
            .with_quarantine_threshold(2),
    );
    let faulty = || {
        one_shot(&circuit, config).with_fault_plan(Arc::new(FaultPlan::new().with(
            0,
            PeOp::Barrier,
            1,
            FaultAction::Kill,
        )))
    };
    // fail, succeed (same shape, no fault), fail: streak never reaches 2.
    assert!(engine.submit(faulty()).unwrap().wait().is_err());
    assert!(engine
        .submit(one_shot(&circuit, config))
        .unwrap()
        .wait()
        .is_ok());
    assert!(engine.submit(faulty()).unwrap().wait().is_err());
    // Still admitted: the intervening success reset the streak.
    let h = engine.submit(one_shot(&circuit, config)).unwrap();
    assert!(h.wait().is_ok());
    assert_eq!(engine.quarantined_shapes(), 0);
    let metrics = engine.shutdown();
    assert_eq!(metrics.quarantined, 0);
}

/// Deadlines and cancellation are honored *mid-sweep*: members of a
/// coalesced batch that are cancelled or expired while earlier members
/// execute must not run.
#[test]
fn mid_sweep_deadline_and_cancellation_are_honored() {
    let template = qaoa_like(4, 1);
    let n_vars = template.n_vars();
    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(1)
            .with_max_batch(8)
            .with_queue_capacity(64),
    );
    let id = engine.register_template("qaoa", &template).unwrap();

    // Stalls are built from retry backoff (wall-clock `thread::sleep`, so
    // timing holds on any hardware): an Exec Kill fault fails attempt 1,
    // the policy sleeps a bounded jittered backoff, attempt 2 succeeds.
    let stall = |ms: u64| {
        (
            Arc::new(FaultPlan::new().with(0, PeOp::Exec, 1, FaultAction::Kill)),
            RetryPolicy::attempts(2)
                .with_base_backoff(Duration::from_millis(ms))
                .with_max_backoff(Duration::from_millis(ms)),
        )
    };

    // Park the worker ~25-50ms so every sweep below is queued (and
    // coalesced into one batch) before the worker reaches them.
    let (plan, policy) = stall(50);
    let blocker_circuit = Arc::new(ghz_with_measure(4));
    let blocker = engine
        .submit(
            one_shot(&blocker_circuit, SimConfig::single_device())
                .with_fault_plan(plan)
                .with_retry(policy),
        )
        .unwrap();

    // First batch member stalls 200-400ms mid-sweep; while it sleeps, the
    // victim's deadline lapses and the cancellee is cancelled.
    let sweep = |i: usize| {
        JobRequest::new(JobSpec::Sweep {
            template: id,
            params: vec![0.1 * i as f64; n_vars],
            returning: SweepReturn::ExpZ(1),
        })
    };
    let (plan, policy) = stall(400);
    let slow_first = engine
        .submit(sweep(1).with_fault_plan(plan).with_retry(policy))
        .unwrap();
    let healthy = engine.submit(sweep(2)).unwrap();
    let cancellee = engine.submit(sweep(3)).unwrap();
    // The deadline (150ms) sits strictly between the batch dequeue (~50ms)
    // and the victim's turn (≥ 200ms behind `slow_first`'s backoff).
    let victim = engine
        .submit(sweep(4).with_deadline_in(Duration::from_millis(150)))
        .unwrap();

    std::thread::sleep(Duration::from_millis(100));
    cancellee.cancel();

    assert!(blocker.wait().is_ok());
    assert!(slow_first.wait().is_ok(), "stalled, not failed");
    assert!(healthy.wait().is_ok());
    assert!(matches!(cancellee.wait(), Err(JobError::Cancelled)));
    assert!(matches!(victim.wait(), Err(JobError::Expired)));

    let metrics = engine.shutdown();
    assert_eq!(metrics.cancelled, 1);
    assert_eq!(metrics.expired, 1);
    assert_eq!(metrics.completed, 3);
    assert_eq!(metrics.retries, 2, "blocker and slow_first each retried");
}

/// The robustness counters surface through `Display` so operators see them
/// in `sv-sim serve-bench` / `fault-bench` output.
#[test]
fn metrics_display_includes_robustness_line() {
    let engine = Engine::start(EngineConfig::default().with_workers(1));
    let metrics = engine.shutdown();
    let text = format!("{metrics}");
    assert!(text.contains("retries="), "robustness line present: {text}");
    assert!(text.contains("checkpoint_bytes="));
    assert!(text.contains("recovery:"));
}
