//! Job model: what clients submit, what they get back, and the handle that
//! connects the two across threads.

use crate::retry::{DegradePolicy, RetryPolicy};
use crate::templates::TemplateId;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use svsim_core::{RunSummary, SimConfig, StateVector};
use svsim_ir::Circuit;
use svsim_shmem::FaultPlan;
use svsim_types::SvError;

/// Scheduling class. Within a class the queue is FIFO; across classes
/// higher always dequeues first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive interactive requests.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Bulk sweeps that should yield to everything else.
    Low,
}

impl Priority {
    /// All classes, dequeue order.
    pub const ALL: [Self; 3] = [Self::High, Self::Normal, Self::Low];
}

/// Engine-assigned job identity (dense, submission-ordered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// What a sweep trial should deliver back to the client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SweepReturn {
    /// The full final state vector (differential testing, small registers).
    State,
    /// `<Z-mask>` expectation of the final state — the VQA serving shape;
    /// costs no per-job allocation.
    ExpZ(u64),
}

/// The work itself.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// A self-contained circuit executed on a pooled [`svsim_core::Simulator`].
    OneShot {
        /// The circuit (shared so a handle clone is cheap).
        circuit: Arc<Circuit>,
        /// Backend/dispatch/seed selection.
        config: SimConfig,
        /// Basis-state samples to draw after the run (0 = none).
        shots: usize,
        /// Return the final state vector alongside the summary.
        return_state: bool,
    },
    /// One parameter point of a registered template; the engine coalesces
    /// queued points of the same template into one batched execution.
    Sweep {
        /// Registered template.
        template: TemplateId,
        /// Parameter values for this trial.
        params: Vec<f64>,
        /// What to return.
        returning: SweepReturn,
    },
}

/// A job plus its scheduling envelope.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The work.
    pub spec: JobSpec,
    /// Scheduling class.
    pub priority: Priority,
    /// Drop the job (with [`JobError::Expired`]) if it has not *started*
    /// by this instant. Also honored *mid-sweep*: a coalesced batch checks
    /// each member's deadline again right before its execution.
    pub deadline: Option<Instant>,
    /// How transient failures (PE deaths, SHMEM breakdowns) are retried.
    pub retry: RetryPolicy,
    /// Injected-fault schedule for this job: threaded into scale-out
    /// launches and consulted for `Exec`-level faults. `None` in
    /// production; set by fault-injection tests and `sv-sim fault-bench`.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Recovery path beyond retry-in-place: in-place PE respawn or the
    /// halve-PEs degradation ladder.
    pub degrade: DegradePolicy,
    /// Directory for a crash-consistent on-disk checkpoint store. When
    /// set, every checkpoint the job captures is persisted as an atomic
    /// generation, and a retry whose in-memory checkpoint was lost (torn
    /// write, worker panic mid-mutation, degradation to a fresh simulator)
    /// recovers the newest loadable generation instead of rerunning from
    /// scratch.
    pub checkpoint_dir: Option<PathBuf>,
}

impl JobRequest {
    /// A normal-priority request with no deadline and no retries.
    #[must_use]
    pub fn new(spec: JobSpec) -> Self {
        Self {
            spec,
            priority: Priority::Normal,
            deadline: None,
            retry: RetryPolicy::default(),
            fault_plan: None,
            degrade: DegradePolicy::None,
            checkpoint_dir: None,
        }
    }

    /// Override the scheduling class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Expire the job unless it starts within `d` of now.
    #[must_use]
    pub fn with_deadline_in(mut self, d: Duration) -> Self {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Retry transient failures under `policy`.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Attach an injected-fault schedule.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Select a recovery path beyond retry-in-place (see [`DegradePolicy`]).
    #[must_use]
    pub fn with_degrade(mut self, degrade: DegradePolicy) -> Self {
        self.degrade = degrade;
        self
    }

    /// Persist checkpoints into (and recover them from) a crash-consistent
    /// store rooted at `dir`.
    #[must_use]
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }
}

/// Successful job result.
#[derive(Debug)]
pub enum JobOutput {
    /// Result of a [`JobSpec::OneShot`].
    OneShot {
        /// Execution summary (gate count, classical bits, SHMEM traffic).
        summary: RunSummary,
        /// Final state, when requested.
        state: Option<StateVector>,
        /// Sampled outcome histogram, when `shots > 0`.
        samples: Option<BTreeMap<u64, usize>>,
    },
    /// Result of a [`JobSpec::Sweep`] trial.
    Sweep {
        /// Final state, for [`SweepReturn::State`].
        state: Option<StateVector>,
        /// Expectation value, for [`SweepReturn::ExpZ`].
        value: Option<f64>,
    },
}

/// Why a job did not produce output.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// Cancelled through its handle before execution started.
    Cancelled,
    /// Deadline passed while the job waited in the queue.
    Expired,
    /// The simulator reported an error.
    Failed(SvError),
    /// The engine shut down (non-draining) before the job ran.
    Shutdown,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Cancelled => write!(f, "job cancelled"),
            Self::Expired => write!(f, "job deadline expired before execution"),
            Self::Failed(e) => write!(f, "job failed: {e}"),
            Self::Shutdown => write!(f, "engine shut down before the job ran"),
        }
    }
}

impl std::error::Error for JobError {}

/// Shared slot a worker fills and a client waits on.
#[derive(Debug, Default)]
pub(crate) struct JobCell {
    pub(crate) cancelled: AtomicBool,
    result: Mutex<Option<Result<JobOutput, JobError>>>,
    done: Condvar,
}

impl JobCell {
    pub(crate) fn finish(&self, result: Result<JobOutput, JobError>) {
        let mut slot = self.result.lock().expect("job cell lock");
        if slot.is_none() {
            *slot = Some(result);
        }
        self.done.notify_all();
    }
}

/// Client-side handle: await, poll, or cancel one submitted job.
#[derive(Debug, Clone)]
pub struct JobHandle {
    pub(crate) id: JobId,
    pub(crate) cell: Arc<JobCell>,
}

impl JobHandle {
    /// The engine-assigned id.
    #[must_use]
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Request cancellation. Jobs still in the queue are dropped when a
    /// worker reaches them; a job already executing runs to completion
    /// (kernels are not interruptible mid-gate-stream).
    pub fn cancel(&self) {
        self.cell.cancelled.store(true, Ordering::Release);
    }

    /// Block until the job finishes, taking the result. The result is
    /// consumed: call `wait` once per job, even across cloned handles.
    #[must_use = "the job result reports failures"]
    pub fn wait(&self) -> Result<JobOutput, JobError> {
        let mut slot = self.cell.result.lock().expect("job cell lock");
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.cell.done.wait(slot).expect("job cell lock");
        }
    }

    /// Like [`Self::wait`] but gives up after `timeout`, leaving the result
    /// in place for a later wait.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<JobOutput, JobError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.cell.result.lock().expect("job cell lock");
        loop {
            if slot.is_some() {
                return slot.take();
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .cell
                .done
                .wait_timeout(slot, deadline - now)
                .expect("job cell lock");
            slot = guard;
        }
    }

    /// Non-blocking poll; `None` while the job is still pending/running.
    pub fn try_take(&self) -> Option<Result<JobOutput, JobError>> {
        self.cell.result.lock().expect("job cell lock").take()
    }
}
