//! Per-job retry policy: bounded attempts, exponential backoff, and
//! deterministic jitter.
//!
//! Jitter is derived from a seed rather than the wall clock so a fault
//! schedule replays identically: the same job with the same policy backs
//! off by the same durations every run — keeping the engine's recovery
//! tests and `sv-sim fault-bench` reproducible.

use std::time::Duration;
use svsim_types::{SvError, SvRng};

/// How (and whether) a failed job is retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total execution attempts (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Ceiling on the (pre-jitter) backoff.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter factor.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// No retries — the engine's historical behavior.
    fn default() -> Self {
        Self {
            max_attempts: 1,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 0x5eed_5eed,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total attempts with the default
    /// backoff shape.
    #[must_use]
    pub fn attempts(max_attempts: u32) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            ..Self::default()
        }
    }

    /// Override the initial backoff.
    #[must_use]
    pub fn with_base_backoff(mut self, d: Duration) -> Self {
        self.base_backoff = d;
        self
    }

    /// Override the backoff ceiling.
    #[must_use]
    pub fn with_max_backoff(mut self, d: Duration) -> Self {
        self.max_backoff = d;
        self
    }

    /// Override the jitter seed.
    #[must_use]
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Backoff to sleep before retrying after failed attempt `attempt`
    /// (1-based): `base * 2^(attempt-1)` capped at `max_backoff`, scaled
    /// by a deterministic jitter factor in `[0.5, 1.0]`.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(20);
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << shift)
            .min(self.max_backoff);
        let mut rng = SvRng::seed_from_u64(
            self.jitter_seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        exp.mul_f64(0.5 + 0.5 * rng.next_f64())
    }
}

/// Whether a failure class is worth retrying: infrastructure faults (a PE
/// died or hung, a barrier expired, a SHMEM-layer breakdown, a torn
/// checkpoint write) are transient; everything else — config errors,
/// numeric collapse failures — is deterministic and would fail identically
/// again.
#[must_use]
pub fn retryable(e: &SvError) -> bool {
    // Deliberately exhaustive — no wildcard arm. Adding an `SvError`
    // variant must force a retry-classification decision here (compile
    // error otherwise), instead of silently defaulting a new failure
    // class to non-retryable. `svsim-lint` cross-checks this.
    match e {
        SvError::PeFailed { .. }
        | SvError::PeHung { .. }
        | SvError::BarrierTimeout { .. }
        | SvError::Shmem(_)
        | SvError::Checkpoint(_) => true,
        SvError::QubitOutOfRange { .. }
        | SvError::DuplicateQubit { .. }
        | SvError::InvalidConfig(_)
        | SvError::Parse { .. }
        | SvError::Undefined(_)
        | SvError::Arity { .. }
        | SvError::Numeric(_) => false,
    }
}

/// How the engine reacts to repeated infrastructure failures of one job,
/// beyond plain retry-in-place: the self-healing ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Retry-in-place only (the historical behavior).
    #[default]
    None,
    /// Arm the process backend's in-place respawn: a dead or hung PE is
    /// re-forked and the round re-runs on the surviving processes, up to
    /// `max_respawns` recovery rounds per launch, without tearing the
    /// world down. Only meaningful for scale-out jobs on the process
    /// backend.
    Respawn {
        /// Recovery rounds the supervisor may perform per launch.
        max_respawns: u32,
    },
    /// Graceful degradation: after `failures_per_rung` transient failures
    /// at the current width, re-partition the job at half the PEs and
    /// resume from the last good checkpoint (8 → 4 → 2 → 1), stopping at
    /// `min_pes`. Checkpoints are full global state, so a checkpoint taken
    /// at `n` PEs resumes bit-identically at `n/2`.
    HalvePes {
        /// Transient failures tolerated per rung before halving.
        failures_per_rung: u32,
        /// Floor of the ladder (clamped to at least 1 PE).
        min_pes: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::attempts(5)
            .with_base_backoff(Duration::from_millis(2))
            .with_max_backoff(Duration::from_millis(10));
        for attempt in 1..=4 {
            assert_eq!(p.backoff(attempt), p.backoff(attempt), "replayable");
            assert!(p.backoff(attempt) <= Duration::from_millis(10));
            assert!(p.backoff(attempt) >= Duration::from_millis(1), "≥ base/2");
        }
        // Different jitter seeds give different (but still bounded) delays.
        let q = p.with_jitter_seed(99);
        assert_ne!(p.backoff(1), q.backoff(1));
    }

    #[test]
    fn exponential_growth_until_cap() {
        let p = RetryPolicy::attempts(8)
            .with_base_backoff(Duration::from_millis(1))
            .with_max_backoff(Duration::from_millis(8));
        // Pre-jitter envelope doubles: jittered values stay within
        // [cap/2, cap] once the cap is reached.
        let late = p.backoff(7);
        assert!(late >= Duration::from_millis(4) && late <= Duration::from_millis(8));
    }

    #[test]
    fn retryable_classes() {
        use svsim_types::PeOp;
        assert!(retryable(&SvError::PeFailed {
            pe: 1,
            op: PeOp::Put
        }));
        assert!(retryable(&SvError::Shmem("poisoned".into())));
        assert!(retryable(&SvError::PeHung {
            pe: 2,
            epoch: 3,
            stalled_ms: 750
        }));
        assert!(retryable(&SvError::BarrierTimeout {
            pe: 0,
            epoch: 1,
            waited_ms: 200
        }));
        assert!(retryable(&SvError::Checkpoint("torn write".into())));
        assert!(!retryable(&SvError::InvalidConfig("bad".into())));
        assert!(!retryable(&SvError::Numeric("collapse".into())));
    }
}
