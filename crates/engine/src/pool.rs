//! Instance pool: pre-allocated simulators and state buffers reused across
//! jobs.
//!
//! Allocating a `2^n`-amplitude state vector dominates the cost of small
//! jobs, so the engine keeps finished instances keyed by everything that
//! affects their construction — width, backend, dispatch mode, kernel
//! specialization — and hands them back out after an in-place
//! [`Simulator::reset`]. The reset contract (bit-identical to a fresh
//! simulator, verified in `crates/core/src/sim.rs` tests) is what makes
//! reuse invisible to clients.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use svsim_core::{BackendKind, DispatchMode, SimConfig, Simulator, StateVector};
use svsim_types::SvResult;

/// Everything that distinguishes one pooled simulator from another.
/// The seed is deliberately absent: pooled instances are re-seeded per job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PoolKey {
    n_qubits: u32,
    backend: BackendKind,
    dispatch: DispatchMode,
    specialized: bool,
}

impl PoolKey {
    fn of(n_qubits: u32, config: &SimConfig) -> Self {
        Self {
            n_qubits,
            backend: config.backend,
            dispatch: config.dispatch,
            specialized: config.specialized,
        }
    }
}

/// Shared pool of reusable simulators and sweep state buffers.
#[derive(Debug)]
pub(crate) struct InstancePool {
    sims: Mutex<HashMap<PoolKey, Vec<Simulator>>>,
    buffers: Mutex<HashMap<u32, Vec<StateVector>>>,
    /// Retained instances per key; excess check-ins are dropped.
    max_per_key: usize,
    pub(crate) created: AtomicU64,
    pub(crate) reused: AtomicU64,
}

impl InstancePool {
    pub(crate) fn new(max_per_key: usize) -> Self {
        Self {
            sims: Mutex::new(HashMap::new()),
            buffers: Mutex::new(HashMap::new()),
            max_per_key: max_per_key.max(1),
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    /// A simulator matching `config` at `n_qubits`, reset and re-seeded to
    /// `config.seed`. Pulled from the pool when possible, constructed
    /// otherwise.
    pub(crate) fn checkout_sim(&self, n_qubits: u32, config: &SimConfig) -> SvResult<Simulator> {
        let key = PoolKey::of(n_qubits, config);
        let pooled = self
            .sims
            .lock()
            .expect("sim pool lock")
            .get_mut(&key)
            .and_then(Vec::pop);
        if let Some(mut sim) = pooled {
            self.reused.fetch_add(1, Ordering::Relaxed);
            sim.set_seed(config.seed);
            // Cadence is not part of the pool key, so a pooled instance
            // still carries its previous job's setting — adopt this job's.
            sim.set_checkpoint_every(config.checkpoint_every);
            // Remapping is likewise per-job, not part of the key: the same
            // shelved instance serves remapped and naive jobs in turn, and
            // must not leak the previous job's setting into this one.
            sim.set_remap(config.remap);
            // Supervision knobs are per-job too: the world substrate,
            // respawn budget and hang deadline must reflect this job, not
            // the previous tenant's.
            sim.set_shmem_backend(config.shmem_backend);
            sim.set_respawn(config.respawn_max);
            sim.set_hang_deadline_ms(config.hang_deadline_ms);
            sim.reset();
            return Ok(sim);
        }
        self.created.fetch_add(1, Ordering::Relaxed);
        Simulator::new(n_qubits, *config)
    }

    /// Return a simulator for future reuse. Dropped if the key's shelf is
    /// already full.
    pub(crate) fn checkin_sim(&self, sim: Simulator) {
        let key = PoolKey::of(sim.n_qubits(), sim.config());
        let mut sims = self.sims.lock().expect("sim pool lock");
        let shelf = sims.entry(key).or_default();
        if shelf.len() < self.max_per_key {
            shelf.push(sim);
        }
    }

    /// A `|0...0>`-initialized state buffer of the requested width for
    /// template sweeps.
    pub(crate) fn checkout_buffer(&self, n_qubits: u32) -> SvResult<StateVector> {
        let pooled = self
            .buffers
            .lock()
            .expect("buffer pool lock")
            .get_mut(&n_qubits)
            .and_then(Vec::pop);
        if let Some(mut buf) = pooled {
            self.reused.fetch_add(1, Ordering::Relaxed);
            buf.reset_zero();
            return Ok(buf);
        }
        self.created.fetch_add(1, Ordering::Relaxed);
        StateVector::zero_state(n_qubits)
    }

    /// Return a sweep buffer for future reuse.
    pub(crate) fn checkin_buffer(&self, buf: StateVector) {
        let mut buffers = self.buffers.lock().expect("buffer pool lock");
        let shelf = buffers.entry(buf.n_qubits()).or_default();
        if shelf.len() < self.max_per_key {
            shelf.push(buf);
        }
    }

    /// Idle instances currently shelved (simulators + buffers).
    #[cfg(test)]
    pub(crate) fn idle(&self) -> usize {
        let sims: usize = self
            .sims
            .lock()
            .expect("sim pool lock")
            .values()
            .map(Vec::len)
            .sum();
        let bufs: usize = self
            .buffers
            .lock()
            .expect("buffer pool lock")
            .values()
            .map(Vec::len)
            .sum();
        sims + bufs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_ir::{Circuit, GateKind};

    #[test]
    fn checkout_reuses_and_resets() {
        let pool = InstancePool::new(4);
        let config = SimConfig::single_device().with_seed(7);
        let mut sim = pool.checkout_sim(3, &config).unwrap();
        // Dirty it.
        let mut c = Circuit::new(3);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
        sim.run(&c).unwrap();
        pool.checkin_sim(sim);
        assert_eq!(pool.idle(), 1);

        // Same key: must reuse, and must come back pristine.
        let sim2 = pool.checkout_sim(3, &config).unwrap();
        assert_eq!(pool.reused.load(Ordering::Relaxed), 1);
        assert_eq!(sim2.state().re()[0], 1.0);
        assert!(sim2.state().re()[1..].iter().all(|&x| x == 0.0));
        assert!(sim2.state().im().iter().all(|&x| x == 0.0));

        // Different width: a miss.
        let _sim3 = pool.checkout_sim(4, &config).unwrap();
        assert_eq!(pool.created.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pooled_instance_alternates_remapped_and_naive_jobs_cleanly() {
        // The satellite audit: remap is adopted at checkout (not part of
        // the pool key), so ONE shelved instance must serve remapped and
        // naive jobs in strict alternation with no stale permutation,
        // exchange buffer, or counter leaking across jobs.
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.apply(GateKind::H, &[q], &[]).unwrap();
        }
        c.apply(GateKind::CX, &[3, 2], &[]).unwrap();
        c.apply(GateKind::T, &[3], &[]).unwrap();
        let mut reference = Simulator::new(4, SimConfig::single_device()).unwrap();
        reference.run(&c).unwrap();

        let pool = InstancePool::new(1);
        for round in 0..4 {
            let remap = round % 2 == 0;
            let mut config = SimConfig::scale_out(4).with_seed(7);
            if remap {
                config = config.with_remap();
            }
            let mut sim = pool.checkout_sim(4, &config).unwrap();
            let summary = sim.run(&c).unwrap();
            assert_eq!(
                summary.remap_swaps > 0,
                remap,
                "round {round}: swaps iff the job asked for remapping"
            );
            assert_eq!(
                sim.state().re(),
                reference.state().re(),
                "round {round} (remap={remap})"
            );
            assert_eq!(
                sim.state().im(),
                reference.state().im(),
                "round {round} (remap={remap})"
            );
            pool.checkin_sim(sim);
        }
        assert_eq!(
            pool.created.load(Ordering::Relaxed),
            1,
            "one instance must have served every job"
        );
        assert_eq!(pool.reused.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn shelf_is_bounded() {
        let pool = InstancePool::new(2);
        let config = SimConfig::single_device();
        let sims: Vec<_> = (0..4)
            .map(|_| pool.checkout_sim(2, &config).unwrap())
            .collect();
        for s in sims {
            pool.checkin_sim(s);
        }
        assert_eq!(pool.idle(), 2, "excess check-ins must be dropped");
    }

    #[test]
    fn buffers_round_trip() {
        let pool = InstancePool::new(2);
        let mut b = pool.checkout_buffer(5).unwrap();
        b.reset_zero();
        pool.checkin_buffer(b);
        let b2 = pool.checkout_buffer(5).unwrap();
        assert_eq!(b2.n_qubits(), 5);
        assert_eq!(pool.reused.load(Ordering::Relaxed), 1);
    }
}
