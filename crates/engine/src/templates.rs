//! Template registry: compile a parameterized circuit once, then reference
//! it from any number of sweep jobs by id.
//!
//! Workers keep their own patchable [`CompiledTemplate`] clones (patching
//! mutates kernel payloads in place, so the shared master copy must stay
//! pristine). The registry hands out `Arc`s of the master; a worker clones
//! lazily on first use and keeps the clone for the engine's lifetime.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use svsim_core::{CompiledTemplate, ParamCircuit};
use svsim_types::SvResult;

/// Opaque handle to a registered template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemplateId(pub u64);

impl std::fmt::Display for TemplateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tpl-{}", self.0)
    }
}

/// Immutable template metadata visible to schedulers and clients.
#[derive(Debug, Clone)]
pub struct TemplateInfo {
    /// Client-chosen name (diagnostics only; not unique).
    pub name: String,
    /// Register width.
    pub n_qubits: u32,
    /// Number of variational parameters a sweep job must supply.
    pub n_vars: usize,
}

#[derive(Debug)]
struct Entry {
    info: TemplateInfo,
    master: Arc<CompiledTemplate>,
}

/// Shared, append-only store of compiled templates.
#[derive(Debug, Default)]
pub struct TemplateRegistry {
    entries: Mutex<HashMap<TemplateId, Entry>>,
    next: std::sync::atomic::AtomicU64,
}

impl TemplateRegistry {
    /// Compile and register a template.
    ///
    /// # Errors
    /// Propagates compilation errors from the template structure.
    pub fn register(&self, name: &str, circuit: &ParamCircuit) -> SvResult<TemplateId> {
        self.register_fused(name, circuit, 0)
    }

    /// Compile, pre-fuse, and register a template: runs of adjacent
    /// kernels sharing a `window`-qubit support collapse into dense fused
    /// sweeps *once*, in the master — every sweep member then re-patches
    /// symbolic angle slots inside the fused micro-ops and pays the
    /// collapsed pass count. `window == 0` registers unfused.
    ///
    /// # Errors
    /// Propagates compilation errors from the template structure.
    pub fn register_fused(
        &self,
        name: &str,
        circuit: &ParamCircuit,
        window: u8,
    ) -> SvResult<TemplateId> {
        let mut master = circuit.compile()?;
        master.fuse(window);
        let info = TemplateInfo {
            name: name.to_string(),
            n_qubits: master.n_qubits(),
            n_vars: master.n_vars(),
        };
        let id = TemplateId(self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
        self.entries.lock().expect("template registry lock").insert(
            id,
            Entry {
                info,
                master: Arc::new(master),
            },
        );
        Ok(id)
    }

    /// Metadata for a registered template.
    #[must_use]
    pub fn info(&self, id: TemplateId) -> Option<TemplateInfo> {
        self.entries
            .lock()
            .expect("template registry lock")
            .get(&id)
            .map(|e| e.info.clone())
    }

    /// The shared master copy (clone it before patching).
    #[must_use]
    pub(crate) fn master(&self, id: TemplateId) -> Option<Arc<CompiledTemplate>> {
        self.entries
            .lock()
            .expect("template registry lock")
            .get(&id)
            .map(|e| Arc::clone(&e.master))
    }

    /// Number of registered templates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("template registry lock").len()
    }

    /// Whether no templates are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Worker-private cache of patchable template clones.
#[derive(Debug, Default)]
pub(crate) struct WorkerTemplates {
    clones: HashMap<TemplateId, CompiledTemplate>,
}

impl WorkerTemplates {
    /// The worker's patchable clone, created from the master on first use.
    pub(crate) fn get_mut(
        &mut self,
        id: TemplateId,
        registry: &TemplateRegistry,
    ) -> Option<&mut CompiledTemplate> {
        if let std::collections::hash_map::Entry::Vacant(e) = self.clones.entry(id) {
            let master = registry.master(id)?;
            e.insert((*master).clone());
        }
        self.clones.get_mut(&id)
    }
}
