//! svsim-engine — a persistent job-scheduling and batching service layer
//! over the SV-Sim simulator.
//!
//! The paper's simulator is a library: construct, run one circuit, drop.
//! Real deployments (the paper's QAOA/QNN case studies, §6) instead issue
//! *streams* of mostly-similar circuits — parameter sweeps from an
//! optimizer, plus interactive one-shot requests. This crate adds the
//! serving layer that makes those streams cheap:
//!
//! - a **typed dataflow pipeline** (the default [`ExecutionModel`]): jobs
//!   flow as memory-accounted packets through bounded admit → compile →
//!   execute → readback stages, each with its own queue, [`SchedMode`],
//!   and occupancy metrics, with an [`AllocMode`] budget capping total
//!   in-flight state-vector bytes at admission;
//! - a **bounded, priority-aware queue** with reject-on-full admission
//!   (backpressure is explicit, never a silent stall);
//! - a **worker pool** of persistent threads so simulator setup cost is
//!   paid once, not per request;
//! - an **instance pool** reusing `2^n`-amplitude state vectors across
//!   jobs, keyed by (width, backend, dispatch, specialization), built on
//!   [`svsim_core::Simulator::reset`]'s bit-identical reinit contract;
//! - **micro-batching**: queued sweep jobs sharing a compiled
//!   [`svsim_core::CompiledTemplate`] are coalesced into one
//!   patch-and-execute loop over a single reused buffer;
//! - **per-job deadlines and cancellation**, honored at dequeue *and*
//!   re-checked mid-sweep before each batched execution;
//! - **retry and self-healing**: per-job [`RetryPolicy`] with exponential
//!   backoff and deterministic jitter, checkpoint-resuming re-execution of
//!   jobs killed by injected or real PE faults, a per-job [`DegradePolicy`]
//!   choosing between in-place PE respawn and the halve-PEs degradation
//!   ladder (resume-from-checkpoint at half the width), an optional
//!   crash-consistent on-disk checkpoint store per job, and a quarantine
//!   list that refuses job shapes which keep failing;
//! - **drain or hard shutdown**, and a [`MetricsSnapshot`] aggregating
//!   counts, latency histograms, SHMEM traffic, and robustness counters
//!   (retries, quarantined submissions, checkpoint bytes, recovery
//!   latency) across all jobs.
//!
//! ```
//! use svsim_engine::{Engine, EngineConfig, JobRequest, JobSpec};
//! use svsim_core::SimConfig;
//! use svsim_ir::{Circuit, GateKind};
//! use std::sync::Arc;
//!
//! let engine = Engine::start(EngineConfig::default().with_workers(2));
//! let mut bell = Circuit::new(2);
//! bell.apply(GateKind::H, &[0], &[]).unwrap();
//! bell.apply(GateKind::CX, &[0, 1], &[]).unwrap();
//! let handle = engine
//!     .submit(JobRequest::new(JobSpec::OneShot {
//!         circuit: Arc::new(bell),
//!         config: SimConfig::single_device(),
//!         shots: 100,
//!         return_state: false,
//!     }))
//!     .unwrap();
//! let output = handle.wait().unwrap();
//! # let _ = output;
//! let _final = engine.shutdown();
//! ```

#![warn(missing_docs)]

mod engine;
mod job;
mod metrics;
mod pipeline;
mod pool;
mod queue;
mod retry;
mod templates;

pub use engine::{Engine, EngineConfig};
pub use job::{JobError, JobHandle, JobId, JobOutput, JobRequest, JobSpec, Priority, SweepReturn};
pub use metrics::{EngineMetrics, LatencyHistogram, LatencySnapshot, MetricsSnapshot};
pub use pipeline::{AllocMode, ExecutionModel, SchedMode, StageSnapshot};
pub use queue::SubmitError;
pub use retry::{retryable, DegradePolicy, RetryPolicy};
pub use templates::{TemplateId, TemplateInfo, TemplateRegistry};
