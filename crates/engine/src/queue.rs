//! Bounded, priority-aware job queue with reject-on-full admission.
//!
//! Admission never blocks: a full queue refuses the job immediately so the
//! caller can shed load or retry with backoff — the same backpressure
//! stance as the SHMEM layer's bounded symmetric heap. Dequeue blocks
//! (workers park on a condvar until work or shutdown arrives).

use crate::job::{JobCell, JobRequest, Priority};
use crate::templates::TemplateId;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; try again later.
    QueueFull,
    /// The engine is shutting down and accepts no new work.
    ShuttingDown,
    /// A sweep job referenced a template id the engine does not know.
    UnknownTemplate(TemplateId),
    /// A sweep job supplied fewer parameters than its template requires.
    BadParamCount {
        /// Parameters the template requires.
        expected: usize,
        /// Parameters the job supplied.
        got: usize,
    },
    /// An identical job has already failed repeatedly; the engine refuses
    /// it until the quarantine is lifted (degradation instead of burning
    /// workers on a poison job).
    Quarantined {
        /// Consecutive final failures recorded for this job shape.
        failures: u32,
    },
    /// Admitting this job would push the engine's in-flight state-vector
    /// bytes over the [`crate::AllocMode::LimitMemory`] cap; try again
    /// once in-flight work drains.
    MemoryExceeded {
        /// Bytes this job would pin while in flight.
        needed: u64,
        /// The configured in-flight byte cap.
        limit: u64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull => write!(f, "queue full, job rejected"),
            Self::ShuttingDown => write!(f, "engine shutting down, job rejected"),
            Self::UnknownTemplate(id) => write!(f, "unknown template {id}"),
            Self::BadParamCount { expected, got } => {
                write!(
                    f,
                    "template needs {expected} parameters, job supplied {got}"
                )
            }
            Self::Quarantined { failures } => {
                write!(f, "job quarantined after {failures} repeated failures")
            }
            Self::MemoryExceeded { needed, limit } => {
                write!(
                    f,
                    "job needs {needed} in-flight bytes, over the {limit}-byte cap"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// A job as it sits in the queue.
#[derive(Debug)]
pub(crate) struct QueuedJob {
    pub(crate) request: JobRequest,
    pub(crate) cell: Arc<JobCell>,
    pub(crate) enqueued_at: Instant,
}

impl QueuedJob {
    /// The template id if this is a sweep job (the coalescing key).
    pub(crate) fn template(&self) -> Option<TemplateId> {
        match &self.request.spec {
            crate::job::JobSpec::Sweep { template, .. } => Some(*template),
            crate::job::JobSpec::OneShot { .. } => None,
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// One FIFO lane per priority class, indexed by `Priority::ALL` order.
    lanes: [VecDeque<QueuedJob>; 3],
    /// Closed to new submissions (drain or hard stop).
    closed: bool,
}

impl Inner {
    fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }
}

/// The shared queue.
#[derive(Debug)]
pub(crate) struct JobQueue {
    inner: Mutex<Inner>,
    /// Signals workers: work available or queue closed.
    work: Condvar,
    capacity: usize,
}

fn lane(p: Priority) -> usize {
    match p {
        Priority::High => 0,
        Priority::Normal => 1,
        Priority::Low => 2,
    }
}

impl JobQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            work: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admit a job or refuse immediately.
    // Rejection hands the job back by value so the caller can fail its
    // handle; boxing it would put an allocation on the admission path.
    #[allow(clippy::result_large_err)]
    pub(crate) fn push(&self, job: QueuedJob) -> Result<(), (SubmitError, QueuedJob)> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err((SubmitError::ShuttingDown, job));
        }
        if inner.len() >= self.capacity {
            return Err((SubmitError::QueueFull, job));
        }
        inner.lanes[lane(job.request.priority)].push_back(job);
        drop(inner);
        self.work.notify_one();
        Ok(())
    }

    /// Jobs currently queued (not running).
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").len()
    }

    /// Block until a job is available, then pop the highest-priority one.
    /// If it is a sweep, also pop up to `max_batch - 1` more sweeps with
    /// the same template (from any lane, preserving lane order) so the
    /// worker can run them as one coalesced batch.
    ///
    /// Returns `None` when the queue is closed and empty — the worker
    /// shutdown signal. Under a draining close, queued jobs keep flowing
    /// until the queue is empty.
    pub(crate) fn pop_batch(&self, max_batch: usize) -> Option<Vec<QueuedJob>> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(head) = inner
                .lanes
                .iter_mut()
                .find_map(|l| (!l.is_empty()).then(|| l.pop_front().expect("non-empty lane")))
            {
                let mut batch = vec![head];
                if let Some(tpl) = batch[0].template() {
                    let want = max_batch.saturating_sub(1);
                    for l in &mut inner.lanes {
                        while batch.len() <= want {
                            let Some(pos) = l.iter().position(|j| j.template() == Some(tpl)) else {
                                break;
                            };
                            batch.push(l.remove(pos).expect("position just found"));
                        }
                    }
                }
                return Some(batch);
            }
            if inner.closed {
                return None;
            }
            inner = self.work.wait(inner).expect("queue lock");
        }
    }

    /// Close to new submissions. With `drain`, queued jobs stay and will be
    /// executed; without, they are removed and returned so the caller can
    /// fail their handles.
    pub(crate) fn close(&self, drain: bool) -> Vec<QueuedJob> {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.closed = true;
        let orphans = if drain {
            Vec::new()
        } else {
            inner.lanes.iter_mut().flat_map(std::mem::take).collect()
        };
        drop(inner);
        self.work.notify_all();
        orphans
    }
}
