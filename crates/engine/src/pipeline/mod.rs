//! The typed dataflow pipeline behind [`crate::Engine`].
//!
//! Jobs flow as pooled, memory-accounted packets through four stages:
//!
//! ```text
//! admit/parse ──▶ compile/plan ──▶ execute ──▶ readback/measure
//!   (caller)        (1 thread)    (N threads)     (1 thread)
//! ```
//!
//! - **admit** runs on the submitting thread: quarantine and sweep
//!   validation, the job fingerprint, and a [`MemoryBudget`] lease; then a
//!   reject-on-full push into the admit queue (typed backpressure at the
//!   edge).
//! - **compile** pops admitted packets, re-checks cancellation/deadline at
//!   the hop, and attaches a cached [`svsim_core::CompiledPlan`] to
//!   one-shot jobs so repeated circuits skip op→kernel lowering entirely.
//! - **execute** is the worker pool: template-coalesced batching, retry,
//!   degradation ladders, and quarantine marking — the same machinery as
//!   the legacy engine, now fed from a bounded stage queue with one more
//!   cancel/deadline re-check at the hop.
//! - **readback** samples, clones requested state, checks the simulator
//!   back into the instance pool, and publishes — off the execute workers,
//!   so a large job's measurement readout no longer blocks the next job's
//!   execution.
//!
//! Interior hops use blocking pushes, so a slow stage fills its queue and
//! stalls upstream stages until, at the edge, `submit` itself starts
//! refusing work: backpressure propagates topologically rather than
//! queueing without bound.

mod packet;
mod stage;

pub use packet::AllocMode;
pub use stage::{SchedMode, StageSnapshot};

pub(crate) use packet::{packet_bytes, JobPacket, MemoryBudget, Readback};
pub(crate) use stage::StageQueue;

use crate::engine::{
    execute_one_shot, publish, readback_one_shot, run_sweep_batch, EngineConfig, ExecOutcome,
    Shared,
};
use crate::job::{JobError, JobSpec};
use crate::queue::QueuedJob;
use crate::templates::WorkerTemplates;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use svsim_core::{CompiledPlan, SimConfig};
use svsim_ir::Circuit;

/// Which execution substrate the engine runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionModel {
    /// The staged dataflow pipeline (the default): compile/execute/readback
    /// overlap, bounded stage queues, per-stage backpressure.
    #[default]
    Pipeline,
    /// The original single-queue worker pool, kept as an honest baseline
    /// for `serve-bench --model legacy` comparisons.
    Legacy,
}

/// Compiled plans cached by the compile stage, keyed by circuit identity.
///
/// Keying on `Arc` pointer identity makes hits exact and free: a service
/// resubmitting the same `Arc<Circuit>` reuses the plan, while equal-but-
/// distinct circuits simply miss and recompile (correctness never depends
/// on a hit). Holding the `Arc` in the entry keeps the allocation alive,
/// so a pointer can never be recycled into a false hit.
#[derive(Debug, Default)]
struct PlanCache {
    entries: std::collections::VecDeque<(Arc<Circuit>, Arc<CompiledPlan>)>,
}

/// Distinct circuits the compile stage remembers plans for.
const PLAN_CACHE_CAP: usize = 32;

impl PlanCache {
    fn plan_for(&mut self, circuit: &Arc<Circuit>, config: &SimConfig) -> Arc<CompiledPlan> {
        if let Some((_, plan)) = self.entries.iter().find(|(c, p)| {
            Arc::ptr_eq(c, circuit) && p.matches(circuit, circuit.n_qubits(), config)
        }) {
            return Arc::clone(plan);
        }
        let plan = Arc::new(CompiledPlan::compile(circuit, circuit.n_qubits(), config));
        if self.entries.len() >= PLAN_CACHE_CAP {
            self.entries.pop_front();
        }
        self.entries
            .push_back((Arc::clone(circuit), Arc::clone(&plan)));
        plan
    }
}

/// The running pipeline: stage queues, their threads, and the budget.
#[derive(Debug)]
pub(crate) struct Pipeline {
    admit_q: Arc<StageQueue<JobPacket>>,
    exec_q: Arc<StageQueue<JobPacket>>,
    read_q: Arc<StageQueue<Readback>>,
    pub(crate) budget: Arc<MemoryBudget>,
    compiler: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
    reader: Option<JoinHandle<()>>,
}

impl Pipeline {
    pub(crate) fn start(shared: &Arc<Shared>, config: &EngineConfig) -> Self {
        let cap = if config.stage_capacity == 0 {
            config.queue_capacity
        } else {
            config.stage_capacity
        }
        .max(1);
        let admit_q = Arc::new(StageQueue::new("admit", cap, config.sched));
        let exec_q = Arc::new(StageQueue::new("execute", cap, config.sched));
        // Readback publishes in completion order — always FIFO — and its
        // queue is deliberately *shallow* regardless of `stage_capacity`:
        // every parked item pins a checked-out simulator (and its budget
        // lease), so deep buffering here only starves the instance pool
        // and bloats in-flight memory. A few slots per worker absorb
        // jitter; past that the executors block, which is exactly the
        // flow control we want.
        let read_cap = cap.min((2 * config.workers.max(1)).max(4));
        let read_q = Arc::new(StageQueue::new("readback", read_cap, SchedMode::Fifo));
        let budget = Arc::new(MemoryBudget::new(config.alloc));

        let compiler = {
            let shared = Arc::clone(shared);
            let admit_q = Arc::clone(&admit_q);
            let exec_q = Arc::clone(&exec_q);
            std::thread::Builder::new()
                .name("svsim-compile".into())
                .spawn(move || compile_loop(&shared, &admit_q, &exec_q))
                .expect("spawn compile stage")
        };
        let executors = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(shared);
                let exec_q = Arc::clone(&exec_q);
                let read_q = Arc::clone(&read_q);
                let max_batch = config.max_batch.max(1);
                std::thread::Builder::new()
                    .name(format!("svsim-exec-{i}"))
                    .spawn(move || execute_loop(&shared, &exec_q, &read_q, max_batch, i))
                    .expect("spawn execute stage")
            })
            .collect();
        let reader = {
            let shared = Arc::clone(shared);
            let read_q = Arc::clone(&read_q);
            std::thread::Builder::new()
                .name("svsim-readback".into())
                .spawn(move || readback_loop(&shared, &read_q))
                .expect("spawn readback stage")
        };
        Self {
            admit_q,
            exec_q,
            read_q,
            budget,
            compiler: Some(compiler),
            executors,
            reader: Some(reader),
        }
    }

    /// The admit stage: reserve budget, wrap the job into a packet, and
    /// push it into the bounded admit queue (reject-on-full).
    pub(crate) fn admit(
        &self,
        shared: &Shared,
        job: QueuedJob,
        fp: Option<u64>,
    ) -> Result<(), crate::queue::SubmitError> {
        let needed = packet_bytes(&job.request.spec, &shared.registry);
        let lease = self.budget.try_admit(needed)?;
        let pkt = JobPacket {
            job,
            fp,
            plan: None,
            lease: Some(lease),
        };
        self.admit_q.try_push(pkt).map_err(|(e, _pkt)| e)
    }

    /// Packets waiting at stage boundaries (not currently inside a stage).
    pub(crate) fn depth(&self) -> usize {
        self.admit_q.len() + self.exec_q.len() + self.read_q.len()
    }

    /// Per-stage occupancy snapshots, pipeline order.
    pub(crate) fn stage_snapshots(&self) -> Vec<StageSnapshot> {
        vec![
            self.admit_q.snapshot(),
            self.exec_q.snapshot(),
            self.read_q.snapshot(),
        ]
    }

    /// Stop the pipeline, flushing stages in topological order so no
    /// packet is stranded at a boundary. With `drain`, every queued packet
    /// flows through its remaining stages to a published result; without,
    /// queued packets fail with [`JobError::Shutdown`] while packets
    /// already executing still run to completion and publish.
    pub(crate) fn stop(&mut self, shared: &Shared, drain: bool) {
        let fail = |pkt: JobPacket| {
            shared
                .metrics
                .shutdown_dropped
                .fetch_add(1, Ordering::Relaxed);
            pkt.job.cell.finish(Err(JobError::Shutdown));
        };
        // 1. Close admission; the compile stage drains what was admitted.
        for pkt in self.admit_q.close(drain) {
            fail(pkt);
        }
        if let Some(h) = self.compiler.take() {
            let _ = h.join();
        }
        // 2. With the compiler gone nothing feeds the execute queue; close
        //    it and let the workers drain (or fail) what remains.
        for pkt in self.exec_q.close(drain) {
            fail(pkt);
        }
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
        // 3. Readback always drains: whatever finished executing must
        //    still be published, even on a hard stop.
        let _ = self.read_q.close(true);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

/// Compile stage: pop admitted packets, drop dead ones at the hop, attach
/// a (cached) compiled plan to one-shots, and forward with backpressure.
fn compile_loop(shared: &Shared, admit_q: &StageQueue<JobPacket>, exec_q: &StageQueue<JobPacket>) {
    let mut cache = PlanCache::default();
    while let Some(mut pkt) = admit_q.pop() {
        let now = Instant::now();
        shared
            .metrics
            .queue_wait
            .record(now.saturating_duration_since(pkt.job.enqueued_at));
        if pkt.job.cell.cancelled.load(Ordering::Acquire) {
            shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
            pkt.job.cell.finish(Err(JobError::Cancelled));
            continue;
        }
        if pkt.job.request.deadline.is_some_and(|d| now > d) {
            shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
            pkt.job.cell.finish(Err(JobError::Expired));
            continue;
        }
        if let JobSpec::OneShot {
            ref circuit,
            ref config,
            ..
        } = pkt.job.request.spec
        {
            pkt.plan = Some(cache.plan_for(circuit, config));
        }
        if let Err(pkt) = exec_q.push_wait(pkt) {
            // Hard shutdown closed the downstream queue under us.
            shared
                .metrics
                .shutdown_dropped
                .fetch_add(1, Ordering::Relaxed);
            pkt.job.cell.finish(Err(JobError::Shutdown));
        }
    }
}

/// Execute stage: the worker pool, fed from the bounded execute queue with
/// a cancel/deadline re-check at the hop, forwarding finished work to
/// readback instead of publishing inline.
fn execute_loop(
    shared: &Shared,
    exec_q: &StageQueue<JobPacket>,
    read_q: &StageQueue<Readback>,
    max_batch: usize,
    worker: usize,
) {
    let mut templates = WorkerTemplates::default();
    while let Some(batch) = exec_q.pop_batch(max_batch) {
        let dequeued = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for pkt in batch {
            if pkt.job.cell.cancelled.load(Ordering::Acquire) {
                shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                pkt.job.cell.finish(Err(JobError::Cancelled));
            } else if pkt.job.request.deadline.is_some_and(|d| dequeued > d) {
                shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
                pkt.job.cell.finish(Err(JobError::Expired));
            } else {
                live.push(pkt);
            }
        }
        let Some(head) = live.first() else { continue };
        match head.job.request.spec {
            // One-shots never coalesce, so `live` holds at most one.
            JobSpec::OneShot { .. } => {
                for pkt in live {
                    let started = Instant::now();
                    let item = match execute_one_shot(shared, &pkt, worker) {
                        ExecOutcome::Done { sim, summary } => Readback::OneShot {
                            pkt,
                            started,
                            sim,
                            summary,
                        },
                        ExecOutcome::Fail(e) => Readback::Ready {
                            pkt,
                            started,
                            result: Err(e),
                        },
                    };
                    forward(shared, read_q, item);
                }
            }
            JobSpec::Sweep { .. } => {
                run_sweep_batch(
                    shared,
                    &mut templates,
                    live,
                    worker,
                    &mut |pkt, started, result| {
                        forward(
                            shared,
                            read_q,
                            Readback::Ready {
                                pkt,
                                started,
                                result,
                            },
                        );
                    },
                );
            }
        }
    }
}

/// Hand finished work to the readback stage; if a hard shutdown already
/// closed it, publish inline — executed results are never dropped.
fn forward(shared: &Shared, read_q: &StageQueue<Readback>, item: Readback) {
    if let Err(item) = read_q.push_wait(item) {
        complete(shared, item);
    }
}

/// Readback stage body: sample, clone requested state, check the
/// simulator back into the pool, then publish.
fn complete(shared: &Shared, item: Readback) {
    match item {
        Readback::OneShot {
            pkt,
            started,
            sim,
            summary,
        } => {
            let output = readback_one_shot(shared, &pkt.job, sim, summary);
            publish(shared, &pkt.job, started, Ok(output));
        }
        Readback::Ready {
            pkt,
            started,
            result,
        } => {
            publish(shared, &pkt.job, started, result);
        }
    }
    // The packet (and its budget lease) drops here: in-flight accounting
    // releases only after publication.
}

fn readback_loop(shared: &Shared, read_q: &StageQueue<Readback>) {
    while let Some(item) = read_q.pop() {
        complete(shared, item);
    }
}
