//! The typed dataflow pipeline behind [`crate::Engine`].
//!
//! Jobs flow as pooled, memory-accounted packets through four stages:
//!
//! ```text
//! admit/parse ──▶ compile/plan ──▶ execute ──▶ readback/measure
//!   (caller)        (1 thread)    (N threads)     (1 thread)
//! ```
//!
//! - **admit** runs on the submitting thread: quarantine and sweep
//!   validation, the job fingerprint, and a [`MemoryBudget`] lease; then a
//!   reject-on-full push into the admit queue (typed backpressure at the
//!   edge).
//! - **compile** pops admitted packets, re-checks cancellation/deadline at
//!   the hop, and attaches a cached [`svsim_core::CompiledPlan`] to
//!   one-shot jobs so repeated circuits skip op→kernel lowering entirely.
//! - **execute** is the worker pool: template-coalesced batching, retry,
//!   degradation ladders, and quarantine marking — the same machinery as
//!   the legacy engine, now fed from a bounded stage queue with one more
//!   cancel/deadline re-check at the hop.
//! - **readback** samples, clones requested state, checks the simulator
//!   back into the instance pool, and publishes — off the execute workers,
//!   so a large job's measurement readout no longer blocks the next job's
//!   execution.
//!
//! Interior hops use blocking pushes, so a slow stage fills its queue and
//! stalls upstream stages until, at the edge, `submit` itself starts
//! refusing work: backpressure propagates topologically rather than
//! queueing without bound.

mod packet;
mod stage;

pub use packet::AllocMode;
pub use stage::{SchedMode, StageSnapshot};

pub(crate) use packet::{packet_bytes, JobPacket, MemoryBudget, Readback};
pub(crate) use stage::StageQueue;

use crate::engine::{
    execute_one_shot, publish, readback_one_shot, run_sweep_batch, EngineConfig, ExecOutcome,
    Shared,
};
use crate::job::{JobError, JobSpec};
use crate::queue::QueuedJob;
use crate::templates::WorkerTemplates;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use svsim_core::{CompiledPlan, SimConfig};
use svsim_ir::Circuit;

/// Which execution substrate the engine runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionModel {
    /// The staged dataflow pipeline (the default): compile/execute/readback
    /// overlap, bounded stage queues, per-stage backpressure.
    #[default]
    Pipeline,
    /// The original single-queue worker pool, kept as an honest baseline
    /// for `serve-bench --model legacy` comparisons.
    Legacy,
}

/// Compiled plans cached by the compile stage, keyed by a structural
/// circuit fingerprint.
///
/// The cache originally keyed on `Arc` pointer identity, which silently
/// defeated it for the common service shape: a caller that re-parses the
/// same QASM per request submits equal-but-distinct `Arc<Circuit>`s, so
/// every job missed and recompiled. The key is now an FNV-1a hash over the
/// circuit's full structural rendering; `Arc::ptr_eq` survives only as a
/// cheap fast path that skips hashing when the caller *does* resubmit the
/// same allocation. Every fingerprint hit is confirmed by full structural
/// equality (`Circuit: PartialEq`) plus [`CompiledPlan::matches`] on the
/// config shape, so a hash collision degrades to a recompile, never to a
/// wrong plan. Holding the `Arc` in the entry keeps the
/// allocation alive, so the pointer fast path can never alias a recycled
/// allocation.
#[derive(Debug, Default)]
struct PlanCache {
    entries: std::collections::VecDeque<(u64, Arc<Circuit>, Arc<CompiledPlan>)>,
}

/// Distinct circuits the compile stage remembers plans for.
const PLAN_CACHE_CAP: usize = 32;

/// Structural identity of a circuit: an FNV-1a hash of its complete debug
/// rendering (ops, qubit/cbit counts, every gate argument). Two
/// independent parses of the same source agree; any one-gate edit differs.
fn circuit_fingerprint(circuit: &Circuit) -> u64 {
    let mut h = svsim_core::Fnv1a::new();
    for b in format!("{circuit:?}").bytes() {
        h.write_u64(u64::from(b));
    }
    h.finish()
}

impl PlanCache {
    fn plan_for(
        &mut self,
        circuit: &Arc<Circuit>,
        config: &SimConfig,
        metrics: &crate::metrics::EngineMetrics,
    ) -> Arc<CompiledPlan> {
        let fp = circuit_fingerprint(circuit);
        if let Some((_, _, plan)) = self.entries.iter().find(|(efp, c, p)| {
            (Arc::ptr_eq(c, circuit) || (*efp == fp && c.as_ref() == circuit.as_ref()))
                && p.matches(circuit, circuit.n_qubits(), config)
        }) {
            metrics.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(plan);
        }
        metrics.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(CompiledPlan::compile(circuit, circuit.n_qubits(), config));
        if self.entries.len() >= PLAN_CACHE_CAP {
            self.entries.pop_front();
        }
        self.entries
            .push_back((fp, Arc::clone(circuit), Arc::clone(&plan)));
        plan
    }
}

/// The running pipeline: stage queues, their threads, and the budget.
#[derive(Debug)]
pub(crate) struct Pipeline {
    admit_q: Arc<StageQueue<JobPacket>>,
    exec_q: Arc<StageQueue<JobPacket>>,
    read_q: Arc<StageQueue<Readback>>,
    pub(crate) budget: Arc<MemoryBudget>,
    compiler: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
    reader: Option<JoinHandle<()>>,
}

impl Pipeline {
    pub(crate) fn start(shared: &Arc<Shared>, config: &EngineConfig) -> Self {
        let cap = if config.stage_capacity == 0 {
            config.queue_capacity
        } else {
            config.stage_capacity
        }
        .max(1);
        let admit_q = Arc::new(StageQueue::new("admit", cap, config.sched));
        let exec_q = Arc::new(StageQueue::new("execute", cap, config.sched));
        // Readback publishes in completion order — always FIFO — and its
        // queue is deliberately *shallow* regardless of `stage_capacity`:
        // every parked item pins a checked-out simulator (and its budget
        // lease), so deep buffering here only starves the instance pool
        // and bloats in-flight memory. A few slots per worker absorb
        // jitter; past that the executors block, which is exactly the
        // flow control we want.
        let read_cap = cap.min((2 * config.workers.max(1)).max(4));
        let read_q = Arc::new(StageQueue::new("readback", read_cap, SchedMode::Fifo));
        let budget = Arc::new(MemoryBudget::new(config.alloc));

        let compiler = {
            let shared = Arc::clone(shared);
            let admit_q = Arc::clone(&admit_q);
            let exec_q = Arc::clone(&exec_q);
            std::thread::Builder::new()
                .name("svsim-compile".into())
                .spawn(move || compile_loop(&shared, &admit_q, &exec_q))
                .expect("spawn compile stage")
        };
        let executors = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(shared);
                let exec_q = Arc::clone(&exec_q);
                let read_q = Arc::clone(&read_q);
                let max_batch = config.max_batch.max(1);
                std::thread::Builder::new()
                    .name(format!("svsim-exec-{i}"))
                    .spawn(move || execute_loop(&shared, &exec_q, &read_q, max_batch, i))
                    .expect("spawn execute stage")
            })
            .collect();
        let reader = {
            let shared = Arc::clone(shared);
            let read_q = Arc::clone(&read_q);
            std::thread::Builder::new()
                .name("svsim-readback".into())
                .spawn(move || readback_loop(&shared, &read_q))
                .expect("spawn readback stage")
        };
        Self {
            admit_q,
            exec_q,
            read_q,
            budget,
            compiler: Some(compiler),
            executors,
            reader: Some(reader),
        }
    }

    /// The admit stage: reserve budget, wrap the job into a packet, and
    /// push it into the bounded admit queue (reject-on-full).
    pub(crate) fn admit(
        &self,
        shared: &Shared,
        job: QueuedJob,
        fp: Option<u64>,
    ) -> Result<(), crate::queue::SubmitError> {
        let needed = packet_bytes(&job.request.spec, &shared.registry);
        let lease = self.budget.try_admit(needed)?;
        let pkt = JobPacket {
            job,
            fp,
            plan: None,
            lease: Some(lease),
        };
        self.admit_q.try_push(pkt).map_err(|(e, _pkt)| e)
    }

    /// Packets waiting at stage boundaries (not currently inside a stage).
    pub(crate) fn depth(&self) -> usize {
        self.admit_q.len() + self.exec_q.len() + self.read_q.len()
    }

    /// Per-stage occupancy snapshots, pipeline order.
    pub(crate) fn stage_snapshots(&self) -> Vec<StageSnapshot> {
        vec![
            self.admit_q.snapshot(),
            self.exec_q.snapshot(),
            self.read_q.snapshot(),
        ]
    }

    /// Stop the pipeline, flushing stages in topological order so no
    /// packet is stranded at a boundary. With `drain`, every queued packet
    /// flows through its remaining stages to a published result; without,
    /// queued packets fail with [`JobError::Shutdown`] while packets
    /// already executing still run to completion and publish.
    pub(crate) fn stop(&mut self, shared: &Shared, drain: bool) {
        let fail = |pkt: JobPacket| {
            shared
                .metrics
                .shutdown_dropped
                .fetch_add(1, Ordering::Relaxed);
            pkt.job.cell.finish(Err(JobError::Shutdown));
        };
        // 1. Close admission; the compile stage drains what was admitted.
        for pkt in self.admit_q.close(drain) {
            fail(pkt);
        }
        if let Some(h) = self.compiler.take() {
            let _ = h.join();
        }
        // 2. With the compiler gone nothing feeds the execute queue; close
        //    it and let the workers drain (or fail) what remains.
        for pkt in self.exec_q.close(drain) {
            fail(pkt);
        }
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
        // 3. Readback always drains: whatever finished executing must
        //    still be published, even on a hard stop.
        let _ = self.read_q.close(true);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

/// Compile stage: pop admitted packets, drop dead ones at the hop, attach
/// a (cached) compiled plan to one-shots, and forward with backpressure.
fn compile_loop(shared: &Shared, admit_q: &StageQueue<JobPacket>, exec_q: &StageQueue<JobPacket>) {
    let mut cache = PlanCache::default();
    while let Some(mut pkt) = admit_q.pop() {
        let now = Instant::now();
        shared
            .metrics
            .queue_wait
            .record(now.saturating_duration_since(pkt.job.enqueued_at));
        if pkt.job.cell.cancelled.load(Ordering::Acquire) {
            shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
            pkt.job.cell.finish(Err(JobError::Cancelled));
            continue;
        }
        if pkt.job.request.deadline.is_some_and(|d| now > d) {
            shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
            pkt.job.cell.finish(Err(JobError::Expired));
            continue;
        }
        if let JobSpec::OneShot {
            ref circuit,
            ref config,
            ..
        } = pkt.job.request.spec
        {
            pkt.plan = Some(cache.plan_for(circuit, config, &shared.metrics));
        }
        if let Err(pkt) = exec_q.push_wait(pkt) {
            // Hard shutdown closed the downstream queue under us.
            shared
                .metrics
                .shutdown_dropped
                .fetch_add(1, Ordering::Relaxed);
            pkt.job.cell.finish(Err(JobError::Shutdown));
        }
    }
}

/// Execute stage: the worker pool, fed from the bounded execute queue with
/// a cancel/deadline re-check at the hop, forwarding finished work to
/// readback instead of publishing inline.
fn execute_loop(
    shared: &Shared,
    exec_q: &StageQueue<JobPacket>,
    read_q: &StageQueue<Readback>,
    max_batch: usize,
    worker: usize,
) {
    let mut templates = WorkerTemplates::default();
    while let Some(batch) = exec_q.pop_batch(max_batch) {
        let dequeued = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for pkt in batch {
            if pkt.job.cell.cancelled.load(Ordering::Acquire) {
                shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                pkt.job.cell.finish(Err(JobError::Cancelled));
            } else if pkt.job.request.deadline.is_some_and(|d| dequeued > d) {
                shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
                pkt.job.cell.finish(Err(JobError::Expired));
            } else {
                live.push(pkt);
            }
        }
        let Some(head) = live.first() else { continue };
        match head.job.request.spec {
            // One-shots never coalesce, so `live` holds at most one.
            JobSpec::OneShot { .. } => {
                for pkt in live {
                    let started = Instant::now();
                    let item = match execute_one_shot(shared, &pkt, worker) {
                        ExecOutcome::Done { sim, summary } => Readback::OneShot {
                            pkt,
                            started,
                            sim,
                            summary,
                        },
                        ExecOutcome::Fail(e) => Readback::Ready {
                            pkt,
                            started,
                            result: Err(e),
                        },
                    };
                    forward(shared, read_q, item);
                }
            }
            JobSpec::Sweep { .. } => {
                run_sweep_batch(
                    shared,
                    &mut templates,
                    live,
                    worker,
                    &mut |pkt, started, result| {
                        forward(
                            shared,
                            read_q,
                            Readback::Ready {
                                pkt,
                                started,
                                result,
                            },
                        );
                    },
                );
            }
        }
    }
}

/// Hand finished work to the readback stage; if a hard shutdown already
/// closed it, publish inline — executed results are never dropped.
fn forward(shared: &Shared, read_q: &StageQueue<Readback>, item: Readback) {
    if let Err(item) = read_q.push_wait(item) {
        complete(shared, item);
    }
}

/// Readback stage body: sample, clone requested state, check the
/// simulator back into the pool, then publish.
fn complete(shared: &Shared, item: Readback) {
    match item {
        Readback::OneShot {
            pkt,
            started,
            sim,
            summary,
        } => {
            let output = readback_one_shot(shared, &pkt.job, sim, summary);
            publish(shared, &pkt.job, started, Ok(output));
        }
        Readback::Ready {
            pkt,
            started,
            result,
        } => {
            publish(shared, &pkt.job, started, result);
        }
    }
    // The packet (and its budget lease) drops here: in-flight accounting
    // releases only after publication.
}

fn readback_loop(shared: &Shared, read_q: &StageQueue<Readback>) {
    while let Some(item) = read_q.pop() {
        complete(shared, item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EngineMetrics;
    use svsim_ir::GateKind;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
        c.apply(GateKind::RZ, &[2], &[0.25]).unwrap();
        c
    }

    fn counts(m: &EngineMetrics) -> (u64, u64) {
        let s = m.snapshot();
        (s.plan_cache_hits, s.plan_cache_misses)
    }

    #[test]
    fn structurally_equal_circuits_hit_across_distinct_arcs() {
        let mut cache = PlanCache::default();
        let metrics = EngineMetrics::default();
        let config = SimConfig::single_device();
        let a = Arc::new(sample_circuit());
        let b = Arc::new(sample_circuit()); // equal structure, distinct allocation
        assert!(!Arc::ptr_eq(&a, &b));
        let plan_a = cache.plan_for(&a, &config, &metrics);
        let plan_b = cache.plan_for(&b, &config, &metrics);
        assert!(
            Arc::ptr_eq(&plan_a, &plan_b),
            "re-parsed circuit must reuse the cached plan"
        );
        assert_eq!(counts(&metrics), (1, 1));
    }

    #[test]
    fn one_gate_edit_misses() {
        let mut cache = PlanCache::default();
        let metrics = EngineMetrics::default();
        let config = SimConfig::single_device();
        let a = Arc::new(sample_circuit());
        let mut edited = sample_circuit();
        edited.apply(GateKind::X, &[1], &[]).unwrap();
        let b = Arc::new(edited);
        let plan_a = cache.plan_for(&a, &config, &metrics);
        let plan_b = cache.plan_for(&b, &config, &metrics);
        assert!(!Arc::ptr_eq(&plan_a, &plan_b));
        assert_eq!(counts(&metrics), (0, 2));
    }

    #[test]
    fn config_shape_change_misses_despite_equal_circuit() {
        let mut cache = PlanCache::default();
        let metrics = EngineMetrics::default();
        let a = Arc::new(sample_circuit());
        let plain = cache.plan_for(&a, &SimConfig::single_device(), &metrics);
        let fused = cache.plan_for(&a, &SimConfig::single_device().with_fusion(2), &metrics);
        assert!(
            !Arc::ptr_eq(&plain, &fused),
            "a fusion-window change must recompile"
        );
        assert_eq!(counts(&metrics), (0, 2));
        // And the fused plan is itself cached for the fused config.
        let again = cache.plan_for(&a, &SimConfig::single_device().with_fusion(2), &metrics);
        assert!(Arc::ptr_eq(&fused, &again));
        assert_eq!(counts(&metrics), (1, 2));
    }

    #[test]
    fn eviction_keeps_the_cache_bounded() {
        let mut cache = PlanCache::default();
        let metrics = EngineMetrics::default();
        let config = SimConfig::single_device();
        for i in 0..(PLAN_CACHE_CAP + 4) {
            let mut c = Circuit::new(3);
            for _ in 0..=i {
                c.apply(GateKind::H, &[0], &[]).unwrap();
            }
            cache.plan_for(&Arc::new(c), &config, &metrics);
        }
        assert!(cache.entries.len() <= PLAN_CACHE_CAP);
    }
}
