//! Bounded inter-stage queues for the dataflow pipeline.
//!
//! Every stage boundary is a [`StageQueue`]: three priority lanes,
//! a hard capacity, and two admission disciplines — `try_push` for the
//! pipeline's edge (reject-on-full, the engine's explicit-backpressure
//! stance) and `push_wait` for interior hops (an upstream stage blocks
//! until the downstream stage has drained a slot, which is what actually
//! *propagates* backpressure from a slow stage toward admission). Each
//! queue keeps its own occupancy statistics so operators can see where
//! packets pile up.

use crate::queue::SubmitError;
use crate::templates::TemplateId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Dequeue order within one priority lane of a pipeline stage.
///
/// Lanes themselves always dequeue high-before-low; the scheduling mode
/// only decides the order *inside* a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// First-in first-out: fair, oldest job first (the default).
    #[default]
    Fifo,
    /// Last-in first-out: freshest job first. Favors latency of recent
    /// submissions over fairness — useful when stale backlog has lost its
    /// value (e.g. an optimizer that only cares about the newest points).
    Lifo,
}

/// Behavior a packet type must expose to ride a [`StageQueue`].
pub(crate) trait StageItem {
    /// Priority lane index: 0 high, 1 normal, 2 low.
    fn lane(&self) -> usize {
        1
    }
    /// Coalescing key: queued items sharing the head's key may be popped
    /// together by [`StageQueue::pop_batch`].
    fn coalesce_key(&self) -> Option<TemplateId> {
        None
    }
}

/// Occupancy and backpressure counters for one stage queue.
#[derive(Debug, Default)]
pub(crate) struct StageStats {
    pushed: AtomicU64,
    popped: AtomicU64,
    rejected: AtomicU64,
    blocked: AtomicU64,
    high_water: AtomicU64,
}

/// Point-in-time view of one stage queue, for [`crate::MetricsSnapshot`].
#[derive(Debug, Clone, Copy)]
pub struct StageSnapshot {
    /// Stage name ("admit", "execute", "readback").
    pub name: &'static str,
    /// Packets queued at this boundary right now.
    pub depth: usize,
    /// Highest queue depth ever observed.
    pub high_water: u64,
    /// Packets accepted into the queue over the engine's life.
    pub pushed: u64,
    /// Packets dequeued by the downstream stage.
    pub popped: u64,
    /// Packets refused at the boundary because the queue was full.
    pub rejected: u64,
    /// Backpressure events: an upstream stage had to block because this
    /// queue was full.
    pub blocked: u64,
}

#[derive(Debug)]
struct Lanes<T> {
    lanes: [VecDeque<T>; 3],
    closed: bool,
}

impl<T> Lanes<T> {
    fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }
}

/// One bounded, priority-aware stage boundary.
#[derive(Debug)]
pub(crate) struct StageQueue<T> {
    name: &'static str,
    inner: Mutex<Lanes<T>>,
    /// Signals consumers: work available or queue closed.
    work: Condvar,
    /// Signals blocked producers: a slot freed up or the queue closed.
    space: Condvar,
    capacity: usize,
    lifo: bool,
    stats: StageStats,
}

impl<T: StageItem> StageQueue<T> {
    pub(crate) fn new(name: &'static str, capacity: usize, sched: SchedMode) -> Self {
        Self {
            name,
            inner: Mutex::new(Lanes {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                closed: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
            lifo: matches!(sched, SchedMode::Lifo),
            stats: StageStats::default(),
        }
    }

    fn insert(&self, lanes: &mut Lanes<T>, item: T) {
        let lane = &mut lanes.lanes[item.lane().min(2)];
        if self.lifo {
            lane.push_front(item);
        } else {
            lane.push_back(item);
        }
        self.stats.pushed.fetch_add(1, Ordering::Relaxed);
        self.stats
            .high_water
            .fetch_max(lanes.len() as u64, Ordering::Relaxed);
    }

    /// Admit an item or refuse immediately — the pipeline's outer edge.
    // Rejection hands the item back by value so the caller can fail its
    // handle without an allocation on the admission path.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_push(&self, item: T) -> Result<(), (SubmitError, T)> {
        let mut inner = self.inner.lock().expect("stage queue lock");
        if inner.closed {
            return Err((SubmitError::ShuttingDown, item));
        }
        if inner.len() >= self.capacity {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Err((SubmitError::QueueFull, item));
        }
        self.insert(&mut inner, item);
        drop(inner);
        self.work.notify_one();
        Ok(())
    }

    /// Block until a slot frees, then enqueue — interior stage hops, where
    /// blocking the producer is exactly how backpressure propagates
    /// upstream. Hands the item back if the queue closed first.
    pub(crate) fn push_wait(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("stage queue lock");
        let mut counted = false;
        loop {
            if inner.closed {
                return Err(item);
            }
            if inner.len() < self.capacity {
                self.insert(&mut inner, item);
                drop(inner);
                self.work.notify_one();
                return Ok(());
            }
            if !counted {
                self.stats.blocked.fetch_add(1, Ordering::Relaxed);
                counted = true;
            }
            inner = self.space.wait(inner).expect("stage queue lock");
        }
    }

    /// Items queued right now.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("stage queue lock").len()
    }

    /// Block until an item is available, then pop the highest-priority one.
    /// Returns `None` when the queue is closed and empty (stage shutdown).
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("stage queue lock");
        loop {
            if let Some(item) = inner
                .lanes
                .iter_mut()
                .find_map(|l| (!l.is_empty()).then(|| l.pop_front().expect("non-empty lane")))
            {
                self.stats.popped.fetch_add(1, Ordering::Relaxed);
                drop(inner);
                self.space.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.work.wait(inner).expect("stage queue lock");
        }
    }

    /// Like [`Self::pop`], but when the head item carries a coalescing key,
    /// also pop up to `max_batch - 1` more items with the same key for one
    /// batched execution, scanning the head's lane and lower-priority
    /// lanes in order.
    ///
    /// Coalescing may skip over *other* keyed items (sweep points of a
    /// different template — they are batch workloads and will coalesce on
    /// a later pop), but a keyless item is a **barrier**: a one-shot
    /// queued ahead of later sweep points is never leapfrogged, so its
    /// latency can't be inflated by batches assembled from work submitted
    /// after it. (The earlier any-position scan did exactly that, and it
    /// showed up as small-job p99 tail inflation in `serve-bench
    /// --compare`.)
    pub(crate) fn pop_batch(&self, max_batch: usize) -> Option<Vec<T>> {
        let mut inner = self.inner.lock().expect("stage queue lock");
        loop {
            if let Some(head) = inner
                .lanes
                .iter_mut()
                .find_map(|l| (!l.is_empty()).then(|| l.pop_front().expect("non-empty lane")))
            {
                let mut batch = vec![head];
                if let Some(key) = batch[0].coalesce_key() {
                    let head_lane = batch[0].lane().min(2);
                    let want = max_batch.saturating_sub(1);
                    for l in &mut inner.lanes[head_lane..] {
                        let mut pos = 0;
                        while batch.len() <= want && pos < l.len() {
                            match l[pos].coalesce_key() {
                                None => break,
                                Some(k) if k == key => {
                                    batch.push(l.remove(pos).expect("position in bounds"));
                                }
                                Some(_) => pos += 1,
                            }
                        }
                    }
                }
                self.stats
                    .popped
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                drop(inner);
                self.space.notify_all();
                return Some(batch);
            }
            if inner.closed {
                return None;
            }
            inner = self.work.wait(inner).expect("stage queue lock");
        }
    }

    /// Close the boundary. With `drain`, queued items stay and keep
    /// flowing to the consumer; without, they are removed and returned so
    /// the caller can fail their handles.
    pub(crate) fn close(&self, drain: bool) -> Vec<T> {
        let mut inner = self.inner.lock().expect("stage queue lock");
        inner.closed = true;
        let orphans = if drain {
            Vec::new()
        } else {
            inner.lanes.iter_mut().flat_map(std::mem::take).collect()
        };
        drop(inner);
        self.work.notify_all();
        self.space.notify_all();
        orphans
    }

    /// Point-in-time occupancy view.
    pub(crate) fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            name: self.name,
            depth: self.len(),
            high_water: self.stats.high_water.load(Ordering::Relaxed),
            pushed: self.stats.pushed.load(Ordering::Relaxed),
            popped: self.stats.popped.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            blocked: self.stats.blocked.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Item {
        id: u32,
        lane: usize,
        key: Option<TemplateId>,
    }

    impl Item {
        fn plain(id: u32, lane: usize) -> Self {
            Self {
                id,
                lane,
                key: None,
            }
        }

        fn keyed(id: u32, lane: usize, key: u64) -> Self {
            Self {
                id,
                lane,
                key: Some(TemplateId(key)),
            }
        }
    }

    impl StageItem for Item {
        fn lane(&self) -> usize {
            self.lane
        }
        fn coalesce_key(&self) -> Option<TemplateId> {
            self.key
        }
    }

    fn drain_ids(q: &StageQueue<Item>) -> Vec<u32> {
        let mut out = Vec::new();
        while q.len() > 0 {
            out.push(q.pop().expect("non-empty").id);
        }
        out
    }

    #[test]
    fn lifo_reverses_within_a_lane_but_lanes_still_rank() {
        // LIFO must only reorder *inside* each priority lane: the high
        // lane drains before normal before low regardless of push order.
        let q = StageQueue::new("test", 16, SchedMode::Lifo);
        q.try_push(Item::plain(1, 2)).unwrap();
        q.try_push(Item::plain(2, 0)).unwrap();
        q.try_push(Item::plain(3, 2)).unwrap();
        q.try_push(Item::plain(4, 0)).unwrap();
        q.try_push(Item::plain(5, 1)).unwrap();
        assert_eq!(drain_ids(&q), [4, 2, 5, 3, 1]);
    }

    #[test]
    fn fifo_preserves_order_within_each_lane() {
        let q = StageQueue::new("test", 16, SchedMode::Fifo);
        q.try_push(Item::plain(1, 2)).unwrap();
        q.try_push(Item::plain(2, 0)).unwrap();
        q.try_push(Item::plain(3, 2)).unwrap();
        q.try_push(Item::plain(4, 0)).unwrap();
        assert_eq!(drain_ids(&q), [2, 4, 1, 3]);
    }

    #[test]
    fn pop_batch_coalesces_one_template_across_interleaved_lanes() {
        // Sweep points of template 7 sit in all three lanes, interleaved
        // with other traffic. One batch must collect exactly the
        // template-7 points (lane order preserved) and leave the rest.
        let q = StageQueue::new("test", 16, SchedMode::Fifo);
        q.try_push(Item::keyed(1, 0, 7)).unwrap();
        q.try_push(Item::plain(2, 0)).unwrap();
        q.try_push(Item::keyed(3, 1, 7)).unwrap();
        q.try_push(Item::keyed(4, 1, 9)).unwrap();
        q.try_push(Item::keyed(5, 2, 7)).unwrap();

        let batch = q.pop_batch(8).expect("items queued");
        let ids: Vec<u32> = batch.iter().map(|i| i.id).collect();
        assert_eq!(ids, [1, 3, 5], "template-7 points from every lane");

        // The stragglers are untouched and still in priority order.
        assert_eq!(drain_ids(&q), [2, 4]);
    }

    #[test]
    fn pop_batch_never_leapfrogs_a_one_shot() {
        // A keyless one-shot queued between sweep points is a barrier:
        // coalescing must not assemble a batch from points submitted
        // after it (that inflates the one-shot's tail latency). Points of
        // a *different* template may be skipped over — they batch later.
        let q = StageQueue::new("test", 16, SchedMode::Fifo);
        q.try_push(Item::keyed(1, 1, 7)).unwrap();
        q.try_push(Item::keyed(2, 1, 9)).unwrap();
        q.try_push(Item::plain(3, 1)).unwrap();
        q.try_push(Item::keyed(4, 1, 7)).unwrap();

        let batch = q.pop_batch(8).expect("items queued");
        let ids: Vec<u32> = batch.iter().map(|i| i.id).collect();
        assert_eq!(ids, [1], "the one-shot at position 3 blocks item 4");
        assert_eq!(drain_ids(&q), [2, 3, 4]);
    }

    #[test]
    fn pop_batch_respects_max_batch_and_uncoalescable_heads() {
        let q = StageQueue::new("test", 16, SchedMode::Fifo);
        for id in 1..=4 {
            q.try_push(Item::keyed(id, 1, 3)).unwrap();
        }
        let first = q.pop_batch(2).expect("items queued");
        assert_eq!(first.len(), 2, "batch capped at max_batch");

        // A keyless head never coalesces, even with keyed items behind.
        q.try_push(Item::plain(9, 0)).unwrap();
        let solo = q.pop_batch(8).expect("items queued");
        assert_eq!(solo.iter().map(|i| i.id).collect::<Vec<_>>(), [9]);
        assert_eq!(drain_ids(&q), [3, 4]);
    }

    #[test]
    fn rejection_and_occupancy_stats_track_the_edge() {
        let q = StageQueue::new("test", 2, SchedMode::Fifo);
        q.try_push(Item::plain(1, 1)).unwrap();
        q.try_push(Item::plain(2, 1)).unwrap();
        let err = q.try_push(Item::plain(3, 1)).unwrap_err();
        assert!(matches!(err.0, SubmitError::QueueFull));
        let s = q.snapshot();
        assert_eq!((s.pushed, s.rejected, s.depth, s.high_water), (2, 1, 2, 2));
    }
}
