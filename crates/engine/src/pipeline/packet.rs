//! Pipeline packets and the in-flight memory budget.
//!
//! A job travels the pipeline as a [`JobPacket`]: the queued job plus
//! everything earlier stages computed for it (fingerprint, compiled plan)
//! and the [`BudgetLease`] pinning its share of the engine's in-flight
//! allocation budget. The lease is RAII — whatever path a packet takes
//! (published, cancelled, expired, dropped at shutdown), dropping the
//! packet releases its budget, so the accounting cannot leak.

use crate::job::{JobError, JobOutput, JobSpec, Priority};
use crate::queue::{QueuedJob, SubmitError};
use crate::templates::{TemplateId, TemplateRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use svsim_core::{CompiledPlan, RunSummary, Simulator};

use super::stage::StageItem;

/// How the engine bounds in-flight work (admitted but not yet published).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocMode {
    /// At most this many packets in flight; the default is effectively
    /// unbounded (`usize::MAX`), leaving the stage queues as the only
    /// limit. Exhaustion refuses admission with
    /// [`SubmitError::QueueFull`].
    Fixed(usize),
    /// Cap the total state-vector bytes pinned by in-flight packets
    /// (16 bytes per amplitude: an f64 real and imaginary plane).
    /// Exhaustion refuses admission with [`SubmitError::MemoryExceeded`].
    LimitMemory(u64),
}

impl Default for AllocMode {
    fn default() -> Self {
        Self::Fixed(usize::MAX)
    }
}

/// State-vector bytes a job pins while in flight: `16 * 2^n` for the
/// register it executes on (one-shot width, or the sweep template's).
pub(crate) fn packet_bytes(spec: &JobSpec, registry: &TemplateRegistry) -> u64 {
    let n_qubits = match spec {
        JobSpec::OneShot { circuit, .. } => circuit.n_qubits(),
        JobSpec::Sweep { template, .. } => registry.info(*template).map_or(0, |info| info.n_qubits),
    };
    16u64.saturating_mul(1u64 << u64::from(n_qubits).min(59))
}

/// The engine-wide in-flight allocation budget.
#[derive(Debug)]
pub(crate) struct MemoryBudget {
    mode: AllocMode,
    packets: AtomicU64,
    bytes: AtomicU64,
    high_water_bytes: AtomicU64,
}

impl MemoryBudget {
    pub(crate) fn new(mode: AllocMode) -> Self {
        Self {
            mode,
            packets: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            high_water_bytes: AtomicU64::new(0),
        }
    }

    /// Reserve `needed` bytes (and one packet slot) for a job about to be
    /// admitted, or refuse with the mode's typed error. The returned lease
    /// releases the reservation when dropped.
    pub(crate) fn try_admit(self: &Arc<Self>, needed: u64) -> Result<BudgetLease, SubmitError> {
        match self.mode {
            AllocMode::Fixed(max_packets) => {
                let admitted =
                    self.packets
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |p| {
                            (p < max_packets as u64).then_some(p + 1)
                        });
                if admitted.is_err() {
                    return Err(SubmitError::QueueFull);
                }
                self.bytes.fetch_add(needed, Ordering::Relaxed);
            }
            AllocMode::LimitMemory(limit) => {
                let admitted = self
                    .bytes
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                        b.checked_add(needed).filter(|&total| total <= limit)
                    });
                if admitted.is_err() {
                    return Err(SubmitError::MemoryExceeded { needed, limit });
                }
                self.packets.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.high_water_bytes
            .fetch_max(self.bytes.load(Ordering::Relaxed), Ordering::Relaxed);
        Ok(BudgetLease {
            budget: Arc::clone(self),
            bytes: needed,
        })
    }

    /// Bytes pinned by in-flight packets right now.
    pub(crate) fn in_flight_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Highest in-flight byte total ever reached.
    pub(crate) fn high_water_bytes(&self) -> u64 {
        self.high_water_bytes.load(Ordering::Relaxed)
    }

    /// The byte cap, when running under [`AllocMode::LimitMemory`].
    pub(crate) fn limit_bytes(&self) -> Option<u64> {
        match self.mode {
            AllocMode::Fixed(_) => None,
            AllocMode::LimitMemory(limit) => Some(limit),
        }
    }
}

/// RAII reservation against the [`MemoryBudget`]; dropping it releases the
/// packet's bytes and slot, whichever exit path the packet took.
pub(crate) struct BudgetLease {
    budget: Arc<MemoryBudget>,
    bytes: u64,
}

impl Drop for BudgetLease {
    fn drop(&mut self) {
        self.budget.packets.fetch_sub(1, Ordering::Relaxed);
        self.budget.bytes.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for BudgetLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BudgetLease")
            .field("bytes", &self.bytes)
            .finish()
    }
}

/// A job in flight through the pipeline, with everything earlier stages
/// computed for it.
#[derive(Debug)]
pub(crate) struct JobPacket {
    /// The job itself (request, result cell, enqueue instant).
    pub(crate) job: QueuedJob,
    /// Fingerprint computed once at admission (quarantine key); `None`
    /// when quarantining is off or on the legacy path.
    pub(crate) fp: Option<u64>,
    /// The compile stage's artifact for one-shot jobs; execution falls
    /// back to on-the-fly lowering when absent (bit-identical either way).
    pub(crate) plan: Option<Arc<CompiledPlan>>,
    /// In-flight budget reservation; never read, held only so dropping
    /// the packet releases it.
    #[allow(dead_code)]
    pub(crate) lease: Option<BudgetLease>,
}

impl JobPacket {
    /// Wrap a queued job with no precomputed stage artifacts — the legacy
    /// worker-pool path, where one worker does every stage itself.
    pub(crate) fn bare(job: QueuedJob) -> Self {
        Self {
            job,
            fp: None,
            plan: None,
            lease: None,
        }
    }
}

impl StageItem for JobPacket {
    fn lane(&self) -> usize {
        match self.job.request.priority {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    fn coalesce_key(&self) -> Option<TemplateId> {
        self.job.template()
    }
}

/// A finished execution on its way to the readback stage.
#[derive(Debug)]
pub(crate) enum Readback {
    /// A successful one-shot: readback still owes sampling, the optional
    /// state clone, and checking the simulator back into the pool.
    OneShot {
        /// The packet (carries the result cell and budget lease).
        pkt: JobPacket,
        /// When the execute stage picked the job up (execution latency
        /// runs from here to publication).
        started: Instant,
        /// The simulator that ran the job, holding its final state.
        sim: Box<Simulator>,
        /// The run summary execution produced.
        summary: RunSummary,
    },
    /// A result that needs no further work — sweep outputs and failures —
    /// just publication in readback order.
    Ready {
        /// The packet (carries the result cell and budget lease).
        pkt: JobPacket,
        /// When the execute stage picked the job up.
        started: Instant,
        /// The finished result.
        result: Result<JobOutput, JobError>,
    },
}

impl StageItem for Readback {
    /// Readback is shortest-expected-work-first across its lanes: results
    /// owing nothing but publication go first, one-shots still owing a
    /// sampling pass or a state clone last — so a stream of cheap results
    /// is never head-of-line blocked behind one fat histogram build.
    ///
    /// An *unsampled* one-shot (no shots, no state clone) owes only a pool
    /// check-in and a publish — as cheap as a `Ready` — so it shares the
    /// fast lane. It previously sat in a middle lane, where a burst of
    /// sweep values in the fast lane could overtake an earlier-finished
    /// small one-shot and stretch its p99. Order *within* each lane stays
    /// completion order (the readback queue is always FIFO).
    fn lane(&self) -> usize {
        match self {
            Readback::OneShot { pkt, .. } => match &pkt.job.request.spec {
                JobSpec::OneShot {
                    shots,
                    return_state,
                    ..
                } if *shots > 0 || *return_state => 1,
                _ => 0,
            },
            Readback::Ready { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_lease_releases_on_panic_unwind() {
        // A stage thread that panics mid-packet unwinds the packet — and
        // with it the lease. The in-flight accounting must return to
        // zero, or the engine slowly loses admission capacity to every
        // quarantined job.
        let budget = Arc::new(MemoryBudget::new(AllocMode::LimitMemory(1 << 20)));
        let b2 = Arc::clone(&budget);
        let unwound = std::panic::catch_unwind(move || {
            let _lease = b2.try_admit(4096).expect("well under the limit");
            panic!("stage thread dies holding a lease");
        });
        assert!(unwound.is_err());
        assert_eq!(budget.in_flight_bytes(), 0, "lease leaked on unwind");
        assert_eq!(budget.high_water_bytes(), 4096, "reservation was real");
    }

    #[test]
    fn memory_budget_refuses_and_rolls_back_cleanly() {
        let budget = Arc::new(MemoryBudget::new(AllocMode::LimitMemory(1000)));
        let held = budget.try_admit(800).expect("fits");
        let err = budget.try_admit(300).expect_err("would exceed the cap");
        assert!(matches!(
            err,
            SubmitError::MemoryExceeded {
                needed: 300,
                limit: 1000
            }
        ));
        // The refused admission must not have charged anything.
        assert_eq!(budget.in_flight_bytes(), 800);
        drop(held);
        assert_eq!(budget.in_flight_bytes(), 0);
        assert!(budget.try_admit(1000).is_ok(), "full cap free again");
    }
}
