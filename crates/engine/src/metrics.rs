//! Engine observability: lock-free counters, log2-bucketed latency
//! histograms, and aggregated SHMEM traffic from every job the engine ran.

use crate::pipeline::StageSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use svsim_shmem::TrafficSnapshot;

/// Number of log2 buckets: bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` microseconds, bucket 0 additionally holds sub-µs.
const BUCKETS: usize = 40;

/// A concurrent latency histogram with power-of-two microsecond buckets.
/// Recording is a single relaxed atomic increment — cheap enough for the
/// dequeue hot path.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    total_us: AtomicU64,
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            total_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let bucket = if us == 0 {
            0
        } else {
            (63 - us.leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent-enough copy for reporting.
    #[must_use]
    pub fn snapshot(&self) -> LatencySnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        LatencySnapshot {
            buckets,
            total_us: self.total_us.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy)]
pub struct LatencySnapshot {
    buckets: [u64; BUCKETS],
    total_us: u64,
    count: u64,
}

impl LatencySnapshot {
    /// Observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, in microseconds.
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }

    /// Upper edge (µs) of the bucket containing quantile `q` in `[0, 1]` —
    /// a conservative estimate with power-of-two resolution.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

impl std::fmt::Display for LatencySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1}us p50<{}us p99<{}us",
            self.count,
            self.mean_us(),
            self.quantile_us(0.50),
            self.quantile_us(0.99),
        )
    }
}

/// Live engine metrics. All counters are monotonic over the engine's life.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Jobs accepted into the queue.
    pub(crate) submitted: AtomicU64,
    /// Jobs refused at admission (queue full).
    pub(crate) rejected: AtomicU64,
    /// Jobs that finished with `Ok`.
    pub(crate) completed: AtomicU64,
    /// Jobs that finished with a simulator error or panic.
    pub(crate) failed: AtomicU64,
    /// Jobs dropped at dequeue because their handle was cancelled.
    pub(crate) cancelled: AtomicU64,
    /// Jobs dropped at dequeue because their deadline had passed.
    pub(crate) expired: AtomicU64,
    /// Jobs failed because the engine shut down first.
    pub(crate) shutdown_dropped: AtomicU64,
    /// Batched executions issued (one per coalesced group).
    pub(crate) batches: AtomicU64,
    /// Sweep jobs served through those batches.
    pub(crate) batched_jobs: AtomicU64,
    /// Pooled simulator/buffer instances constructed.
    pub(crate) pool_created: AtomicU64,
    /// Checkouts satisfied by reuse instead of construction.
    pub(crate) pool_reused: AtomicU64,
    /// Execution attempts re-run after a transient failure.
    pub(crate) retries: AtomicU64,
    /// Submissions refused because the job shape is quarantined.
    pub(crate) quarantined: AtomicU64,
    /// PE hangs detected by the process-backend watchdog (stalled
    /// heartbeat past the deadline, reported as `SvError::PeHung`).
    pub(crate) hung: AtomicU64,
    /// In-place PE respawns performed by the supervisor across all jobs.
    pub(crate) respawned: AtomicU64,
    /// Halve-PEs degradation steps taken (each halves one job's width and
    /// resumes it from checkpoint).
    pub(crate) degraded: AtomicU64,
    /// Bytes captured into state-vector checkpoints across all jobs.
    pub(crate) checkpoint_bytes: AtomicU64,
    /// SHMEM protocol races observed by the dynamic detector across all
    /// jobs that ran with race detection on. Nonzero means a correctness
    /// bug — benches fail loudly on it.
    pub(crate) races_detected: AtomicU64,
    /// Remote bytes the communication-avoiding remap saved across all
    /// remapped scale-out jobs: the analytic naive-plan cost minus the
    /// measured remapped traffic, saturating at zero per job.
    pub(crate) remote_bytes_saved: AtomicU64,
    /// One-shot jobs whose compiled plan was served from the compile
    /// stage's structural plan cache (op→kernel lowering skipped).
    pub(crate) plan_cache_hits: AtomicU64,
    /// One-shot jobs that compiled a fresh plan (cold circuit, evicted
    /// entry, or a config/shape mismatch).
    pub(crate) plan_cache_misses: AtomicU64,
    /// Time from submit to dequeue.
    pub(crate) queue_wait: LatencyHistogram,
    /// Time from dequeue to result publication.
    pub(crate) execution: LatencyHistogram,
    /// Time from first failure of a job to its successful retried
    /// completion — the end-to-end recovery latency.
    pub(crate) recovery: LatencyHistogram,
    /// SHMEM traffic summed over every distributed job.
    pub(crate) traffic: Mutex<TrafficSnapshot>,
}

impl EngineMetrics {
    pub(crate) fn add_traffic(&self, t: &TrafficSnapshot) {
        let mut agg = self.traffic.lock().expect("traffic lock");
        *agg = agg.merged(t);
    }

    /// Point-in-time copy of every metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            shutdown_dropped: self.shutdown_dropped.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_jobs: self.batched_jobs.load(Ordering::Relaxed),
            pool_created: self.pool_created.load(Ordering::Relaxed),
            pool_reused: self.pool_reused.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            hung: self.hung.load(Ordering::Relaxed),
            respawned: self.respawned.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            races_detected: self.races_detected.load(Ordering::Relaxed),
            remote_bytes_saved: self.remote_bytes_saved.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
            queue_wait: self.queue_wait.snapshot(),
            execution: self.execution.snapshot(),
            recovery: self.recovery.snapshot(),
            traffic: *self.traffic.lock().expect("traffic lock"),
            stages: Vec::new(),
            mem_in_flight_bytes: 0,
            mem_high_water_bytes: 0,
            mem_limit_bytes: None,
        }
    }
}

/// Point-in-time engine metrics for reporting.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs refused at admission (queue full).
    pub rejected: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs failed (simulator error or worker panic).
    pub failed: u64,
    /// Jobs cancelled before execution.
    pub cancelled: u64,
    /// Jobs expired before execution.
    pub expired: u64,
    /// Jobs dropped by a non-draining shutdown.
    pub shutdown_dropped: u64,
    /// Coalesced batch executions.
    pub batches: u64,
    /// Sweep jobs served via batches.
    pub batched_jobs: u64,
    /// Pooled instances constructed.
    pub pool_created: u64,
    /// Checkouts satisfied from the pool.
    pub pool_reused: u64,
    /// Execution attempts re-run after a transient failure.
    pub retries: u64,
    /// Submissions refused because the job shape is quarantined.
    pub quarantined: u64,
    /// PE hangs detected by the process-backend watchdog.
    pub hung: u64,
    /// In-place PE respawns performed by the supervisor.
    pub respawned: u64,
    /// Halve-PEs degradation steps taken.
    pub degraded: u64,
    /// Bytes captured into state-vector checkpoints across all jobs.
    pub checkpoint_bytes: u64,
    /// SHMEM protocol races observed across all detector-on jobs.
    pub races_detected: u64,
    /// Remote bytes avoided by qubit remapping across all remapped jobs
    /// (analytic naive cost minus measured remapped traffic).
    pub remote_bytes_saved: u64,
    /// One-shot plans served from the compile stage's structural cache.
    pub plan_cache_hits: u64,
    /// One-shot plans compiled fresh (cold, evicted, or shape mismatch).
    pub plan_cache_misses: u64,
    /// Submit-to-dequeue latency distribution.
    pub queue_wait: LatencySnapshot,
    /// Dequeue-to-result latency distribution.
    pub execution: LatencySnapshot,
    /// First-failure-to-recovered-completion latency distribution.
    pub recovery: LatencySnapshot,
    /// Aggregated SHMEM traffic over all distributed jobs.
    pub traffic: TrafficSnapshot,
    /// Per-stage occupancy of the pipeline, in pipeline order (empty when
    /// the engine runs the legacy worker pool).
    pub stages: Vec<StageSnapshot>,
    /// State-vector bytes pinned by in-flight packets right now
    /// (pipeline model only).
    pub mem_in_flight_bytes: u64,
    /// Highest in-flight byte total ever reached (pipeline model only).
    pub mem_high_water_bytes: u64,
    /// The in-flight byte cap, when running under
    /// [`crate::AllocMode::LimitMemory`].
    pub mem_limit_bytes: Option<u64>,
}

impl MetricsSnapshot {
    /// Jobs whose outcome has been published, successful or not.
    #[must_use]
    pub fn finished(&self) -> u64 {
        self.completed + self.failed + self.cancelled + self.expired + self.shutdown_dropped
    }

    /// Jobs accepted but not yet finished (queued or running).
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.submitted.saturating_sub(self.finished())
    }

    /// Mean jobs per coalesced batch.
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_jobs as f64 / self.batches as f64
        }
    }

    /// Fraction of pool checkouts that avoided construction.
    #[must_use]
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_created + self.pool_reused;
        if total == 0 {
            0.0
        } else {
            self.pool_reused as f64 / total as f64
        }
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "jobs: submitted={} completed={} failed={} rejected={} cancelled={} expired={} dropped={}",
            self.submitted,
            self.completed,
            self.failed,
            self.rejected,
            self.cancelled,
            self.expired,
            self.shutdown_dropped,
        )?;
        writeln!(
            f,
            "batching: batches={} batched_jobs={} mean_batch={:.2}",
            self.batches,
            self.batched_jobs,
            self.mean_batch_size()
        )?;
        writeln!(
            f,
            "pool: created={} reused={} hit_rate={:.1}%",
            self.pool_created,
            self.pool_reused,
            100.0 * self.pool_hit_rate()
        )?;
        writeln!(
            f,
            "plans: cache_hits={} cache_misses={}",
            self.plan_cache_hits, self.plan_cache_misses
        )?;
        writeln!(
            f,
            "robustness: retries={} quarantined={} checkpoint_bytes={} races_detected={}",
            self.retries, self.quarantined, self.checkpoint_bytes, self.races_detected
        )?;
        writeln!(
            f,
            "self-healing: hung={} respawned={} degraded={}",
            self.hung, self.respawned, self.degraded
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "stage {}: depth={} high_water={} pushed={} popped={} rejected={} blocked={}",
                s.name, s.depth, s.high_water, s.pushed, s.popped, s.rejected, s.blocked
            )?;
        }
        if !self.stages.is_empty() {
            write!(
                f,
                "memory: in_flight_bytes={} high_water_bytes={}",
                self.mem_in_flight_bytes, self.mem_high_water_bytes
            )?;
            match self.mem_limit_bytes {
                Some(limit) => writeln!(f, " limit_bytes={limit}")?,
                None => writeln!(f)?,
            }
        }
        writeln!(f, "queue wait: {}", self.queue_wait)?;
        writeln!(f, "execution:  {}", self.execution)?;
        writeln!(f, "recovery:   {}", self.recovery)?;
        write!(
            f,
            "shmem traffic: remote_ops={} remote_bytes={} barriers={} remote_bytes_saved={}",
            self.traffic.remote_gets + self.traffic.remote_puts,
            self.traffic.remote_get_bytes + self.traffic.remote_put_bytes,
            self.traffic.barriers,
            self.remote_bytes_saved,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for us in [1u64, 2, 4, 100, 1000, 1000, 1000, 100_000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 8);
        assert!(s.mean_us() > 0.0);
        // p50 (rank 4 of 8) is the 100us observation: bucket upper edge 128.
        assert_eq!(s.quantile_us(0.5), 128);
        // p75 (rank 6) lands on 1000us: bucket upper edge 1024.
        assert_eq!(s.quantile_us(0.75), 1024);
        assert!(s.quantile_us(1.0) >= 100_000);
        assert!(s.quantile_us(0.0) >= 1);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let s = LatencyHistogram::default().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean_us(), 0.0);
        assert_eq!(s.quantile_us(0.99), 0);
    }

    #[test]
    fn snapshot_math() {
        let m = EngineMetrics::default();
        m.submitted.store(10, Ordering::Relaxed);
        m.completed.store(6, Ordering::Relaxed);
        m.failed.store(1, Ordering::Relaxed);
        m.batches.store(2, Ordering::Relaxed);
        m.batched_jobs.store(6, Ordering::Relaxed);
        m.pool_created.store(1, Ordering::Relaxed);
        m.pool_reused.store(3, Ordering::Relaxed);
        m.races_detected.store(2, Ordering::Relaxed);
        m.remote_bytes_saved.store(4096, Ordering::Relaxed);
        m.plan_cache_hits.store(5, Ordering::Relaxed);
        m.plan_cache_misses.store(2, Ordering::Relaxed);
        m.hung.store(1, Ordering::Relaxed);
        m.respawned.store(3, Ordering::Relaxed);
        m.degraded.store(2, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.races_detected, 2);
        assert_eq!(s.remote_bytes_saved, 4096);
        assert_eq!((s.plan_cache_hits, s.plan_cache_misses), (5, 2));
        assert_eq!((s.hung, s.respawned, s.degraded), (1, 3, 2));
        assert_eq!(s.finished(), 7);
        assert_eq!(s.in_flight(), 3);
        assert!((s.mean_batch_size() - 3.0).abs() < 1e-12);
        assert!((s.pool_hit_rate() - 0.75).abs() < 1e-12);
        // Display must not panic and should mention the headline counters.
        let text = s.to_string();
        assert!(text.contains("submitted=10"));
        assert!(text.contains("races_detected=2"));
        assert!(text.contains("remote_bytes_saved=4096"));
        assert!(text.contains("cache_hits=5 cache_misses=2"));
        assert!(text.contains("hung=1 respawned=3 degraded=2"));
    }
}
