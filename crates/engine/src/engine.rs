//! The engine itself: a persistent worker pool executing jobs from the
//! bounded queue, with template-aware micro-batching and pooled simulator
//! instances.

use crate::job::{
    JobCell, JobError, JobHandle, JobId, JobOutput, JobRequest, JobSpec, SweepReturn,
};
use crate::metrics::{EngineMetrics, MetricsSnapshot};
use crate::pool::InstancePool;
use crate::queue::{JobQueue, QueuedJob, SubmitError};
use crate::templates::{TemplateId, TemplateInfo, TemplateRegistry, WorkerTemplates};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use svsim_core::{measure, ParamCircuit};
use svsim_types::{SvError, SvResult};

/// Engine sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Queue capacity; submissions beyond it are rejected, not blocked.
    pub queue_capacity: usize,
    /// Most sweep jobs coalesced into one batched execution.
    pub max_batch: usize,
    /// Idle instances retained per pool key.
    pub pool_max_per_key: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map_or(2, std::num::NonZeroUsize::get)
            .min(8);
        Self {
            workers,
            queue_capacity: 1024,
            max_batch: 16,
            pool_max_per_key: workers,
        }
    }
}

impl EngineConfig {
    /// Override the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Override the queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Override the micro-batch ceiling.
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }
}

/// State shared between the engine handle and its workers.
#[derive(Debug)]
struct Shared {
    queue: JobQueue,
    metrics: EngineMetrics,
    registry: TemplateRegistry,
    pool: InstancePool,
}

/// A running engine. Submit jobs with [`Engine::submit`]; stop it with
/// [`Engine::shutdown`] (drains) or [`Engine::shutdown_now`] (drops queued
/// jobs). Dropping a running engine behaves like `shutdown_now`.
#[derive(Debug)]
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Engine {
    /// Start the worker pool.
    #[must_use]
    pub fn start(config: EngineConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            metrics: EngineMetrics::default(),
            registry: TemplateRegistry::default(),
            pool: InstancePool::new(config.pool_max_per_key),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let max_batch = config.max_batch.max(1);
                std::thread::Builder::new()
                    .name(format!("svsim-engine-{i}"))
                    .spawn(move || worker_loop(&shared, max_batch))
                    .expect("spawn engine worker")
            })
            .collect();
        Self {
            shared,
            workers,
            next_id: AtomicU64::new(0),
        }
    }

    /// Compile and register a parameterized template for sweep jobs.
    ///
    /// # Errors
    /// Propagates template compilation errors.
    pub fn register_template(&self, name: &str, circuit: &ParamCircuit) -> SvResult<TemplateId> {
        self.shared.registry.register(name, circuit)
    }

    /// Metadata for a registered template.
    #[must_use]
    pub fn template_info(&self, id: TemplateId) -> Option<TemplateInfo> {
        self.shared.registry.info(id)
    }

    /// Submit a job. Never blocks: a full queue or a malformed sweep is
    /// refused immediately.
    ///
    /// # Errors
    /// [`SubmitError`] describing why admission failed.
    pub fn submit(&self, request: JobRequest) -> Result<JobHandle, SubmitError> {
        if let JobSpec::Sweep {
            template, params, ..
        } = &request.spec
        {
            let info = self
                .shared
                .registry
                .info(*template)
                .ok_or(SubmitError::UnknownTemplate(*template))?;
            if params.len() < info.n_vars {
                return Err(SubmitError::BadParamCount {
                    expected: info.n_vars,
                    got: params.len(),
                });
            }
        }
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let cell = Arc::new(JobCell::default());
        let queued = QueuedJob {
            request,
            cell: Arc::clone(&cell),
            enqueued_at: Instant::now(),
        };
        match self.shared.queue.push(queued) {
            Ok(()) => {
                self.shared
                    .metrics
                    .submitted
                    .fetch_add(1, Ordering::Relaxed);
                Ok(JobHandle { id, cell })
            }
            Err((e, _dropped)) => {
                self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Jobs waiting in the queue right now.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.shared.queue.len()
    }

    /// Point-in-time metrics.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut s = self.shared.metrics.snapshot();
        s.pool_created = self.shared.pool.created.load(Ordering::Relaxed);
        s.pool_reused = self.shared.pool.reused.load(Ordering::Relaxed);
        s
    }

    /// Stop accepting work, run every queued job to completion, join the
    /// workers, and return the final metrics.
    #[must_use = "final metrics summarize the engine's whole life"]
    pub fn shutdown(mut self) -> MetricsSnapshot {
        let _ = self.shared.queue.close(true);
        self.join_workers();
        self.metrics()
    }

    /// Stop immediately: queued jobs fail with [`JobError::Shutdown`];
    /// jobs already executing run to completion.
    #[must_use = "final metrics summarize the engine's whole life"]
    pub fn shutdown_now(mut self) -> MetricsSnapshot {
        self.abort_queue();
        self.join_workers();
        self.metrics()
    }

    fn abort_queue(&self) {
        for job in self.shared.queue.close(false) {
            self.shared
                .metrics
                .shutdown_dropped
                .fetch_add(1, Ordering::Relaxed);
            job.cell.finish(Err(JobError::Shutdown));
        }
    }

    fn join_workers(&mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.abort_queue();
            self.join_workers();
        }
    }
}

/// One worker: pop (possibly coalesced) work until the queue closes.
fn worker_loop(shared: &Shared, max_batch: usize) {
    let mut templates = WorkerTemplates::default();
    while let Some(batch) = shared.queue.pop_batch(max_batch) {
        let dequeued = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for job in batch {
            shared
                .metrics
                .queue_wait
                .record(dequeued.saturating_duration_since(job.enqueued_at));
            if job.cell.cancelled.load(Ordering::Acquire) {
                shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                job.cell.finish(Err(JobError::Cancelled));
            } else if job.request.deadline.is_some_and(|d| dequeued > d) {
                shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
                job.cell.finish(Err(JobError::Expired));
            } else {
                live.push(job);
            }
        }
        let Some(head) = live.first() else { continue };
        match head.request.spec {
            // One-shots never coalesce, so `live` holds at most one.
            JobSpec::OneShot { .. } => {
                for job in live {
                    run_one_shot(shared, job);
                }
            }
            JobSpec::Sweep { .. } => run_sweep_batch(shared, &mut templates, live),
        }
    }
}

fn panic_error() -> JobError {
    JobError::Failed(SvError::InvalidConfig(
        "engine worker panicked while executing the job".into(),
    ))
}

fn publish(
    shared: &Shared,
    job: &QueuedJob,
    started: Instant,
    result: Result<JobOutput, JobError>,
) {
    match &result {
        Ok(_) => shared.metrics.completed.fetch_add(1, Ordering::Relaxed),
        Err(_) => shared.metrics.failed.fetch_add(1, Ordering::Relaxed),
    };
    shared.metrics.execution.record(started.elapsed());
    job.cell.finish(result);
}

fn run_one_shot(shared: &Shared, job: QueuedJob) {
    let started = Instant::now();
    let JobSpec::OneShot {
        ref circuit,
        ref config,
        shots,
        return_state,
    } = job.request.spec
    else {
        unreachable!("dispatched as one-shot");
    };
    let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<JobOutput, JobError> {
        let mut sim = shared
            .pool
            .checkout_sim(circuit.n_qubits(), config)
            .map_err(JobError::Failed)?;
        match sim.run(circuit) {
            Err(e) => {
                shared.pool.checkin_sim(sim);
                Err(JobError::Failed(e))
            }
            Ok(summary) => {
                shared.metrics.add_traffic(&summary.total_traffic());
                let samples = (shots > 0).then(|| {
                    let mut hist = BTreeMap::new();
                    for outcome in sim.sample(shots) {
                        *hist.entry(outcome).or_insert(0) += 1;
                    }
                    hist
                });
                let state = return_state.then(|| sim.state().clone());
                shared.pool.checkin_sim(sim);
                Ok(JobOutput::OneShot {
                    summary,
                    state,
                    samples,
                })
            }
        }
    }));
    let result = attempt.unwrap_or_else(|_| Err(panic_error()));
    publish(shared, &job, started, result);
}

/// Execute a coalesced group of sweep jobs — all for the same template —
/// against one worker-local template clone and one pooled state buffer.
fn run_sweep_batch(shared: &Shared, templates: &mut WorkerTemplates, jobs: Vec<QueuedJob>) {
    shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .metrics
        .batched_jobs
        .fetch_add(jobs.len() as u64, Ordering::Relaxed);
    let JobSpec::Sweep { template, .. } = jobs[0].request.spec else {
        unreachable!("dispatched as sweep");
    };

    let fail_all = |e: SvError| {
        let started = Instant::now();
        for job in &jobs {
            publish(shared, job, started, Err(JobError::Failed(e.clone())));
        }
    };
    let Some(tpl) = templates.get_mut(template, &shared.registry) else {
        fail_all(SvError::Undefined(format!(
            "template {template} is not registered"
        )));
        return;
    };
    let mut buf = match shared.pool.checkout_buffer(tpl.n_qubits()) {
        Ok(buf) => buf,
        Err(e) => {
            fail_all(e);
            return;
        }
    };

    for job in &jobs {
        let started = Instant::now();
        let JobSpec::Sweep {
            ref params,
            returning,
            ..
        } = job.request.spec
        else {
            unreachable!("coalesced batches are sweep-only");
        };
        let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<JobOutput, JobError> {
            tpl.run_into(params, &mut buf).map_err(JobError::Failed)?;
            Ok(match returning {
                SweepReturn::State => JobOutput::Sweep {
                    state: Some(buf.clone()),
                    value: None,
                },
                SweepReturn::ExpZ(mask) => JobOutput::Sweep {
                    state: None,
                    value: Some(measure::expval_z_mask(&buf, mask)),
                },
            })
        }));
        let result = attempt.unwrap_or_else(|_| Err(panic_error()));
        publish(shared, job, started, result);
    }
    shared.pool.checkin_buffer(buf);
}
