//! The engine facade: job admission, the execution substrate behind it
//! (staged pipeline or legacy worker pool), and the shared execution
//! machinery both substrates run on — retry, degradation ladders,
//! checkpoint recovery, quarantine.

use crate::job::{
    JobCell, JobError, JobHandle, JobId, JobOutput, JobRequest, JobSpec, SweepReturn,
};
use crate::metrics::{EngineMetrics, MetricsSnapshot};
use crate::pipeline::{AllocMode, ExecutionModel, JobPacket, Pipeline, SchedMode};
use crate::pool::InstancePool;
use crate::queue::{JobQueue, QueuedJob, SubmitError};
use crate::retry::{retryable, DegradePolicy};
use crate::templates::{TemplateId, TemplateInfo, TemplateRegistry, WorkerTemplates};
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use svsim_core::{measure, Fnv1a, ParamCircuit, RunSummary, Simulator};
use svsim_shmem::FaultAction;
use svsim_types::{PeOp, SvError, SvResult};

/// Engine sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads executing jobs (the pipeline's execute stage, or the
    /// whole legacy pool).
    pub workers: usize,
    /// Queue capacity; submissions beyond it are rejected, not blocked.
    pub queue_capacity: usize,
    /// Most sweep jobs coalesced into one batched execution.
    pub max_batch: usize,
    /// Idle instances retained per pool key.
    pub pool_max_per_key: usize,
    /// Consecutive final failures of one job shape before further
    /// submissions of it are refused with [`SubmitError::Quarantined`]
    /// (0 disables quarantining).
    pub quarantine_threshold: u32,
    /// Which execution substrate to run (staged pipeline by default).
    pub model: ExecutionModel,
    /// Capacity of each pipeline stage queue; 0 (the default) inherits
    /// `queue_capacity`. Ignored by the legacy model.
    pub stage_capacity: usize,
    /// Dequeue order within a priority lane of the admit and execute
    /// stages. Ignored by the legacy model.
    pub sched: SchedMode,
    /// In-flight allocation budget enforced at admission. Ignored by the
    /// legacy model.
    pub alloc: AllocMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map_or(2, std::num::NonZeroUsize::get)
            .min(8);
        Self {
            workers,
            queue_capacity: 1024,
            max_batch: 16,
            pool_max_per_key: workers,
            quarantine_threshold: 3,
            model: ExecutionModel::default(),
            stage_capacity: 0,
            sched: SchedMode::default(),
            alloc: AllocMode::default(),
        }
    }
}

impl EngineConfig {
    /// Override the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Override the queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Override the micro-batch ceiling.
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Override the quarantine threshold (0 disables quarantining).
    #[must_use]
    pub fn with_quarantine_threshold(mut self, threshold: u32) -> Self {
        self.quarantine_threshold = threshold;
        self
    }

    /// Pick the execution substrate.
    #[must_use]
    pub fn with_model(mut self, model: ExecutionModel) -> Self {
        self.model = model;
        self
    }

    /// Override the per-stage queue capacity (0 inherits `queue_capacity`).
    #[must_use]
    pub fn with_stage_capacity(mut self, capacity: usize) -> Self {
        self.stage_capacity = capacity;
        self
    }

    /// Pick the within-lane scheduling mode for pipeline stages.
    #[must_use]
    pub fn with_sched(mut self, sched: SchedMode) -> Self {
        self.sched = sched;
        self
    }

    /// Pick the in-flight allocation budget enforced at admission.
    #[must_use]
    pub fn with_alloc(mut self, alloc: AllocMode) -> Self {
        self.alloc = alloc;
        self
    }
}

/// State shared between the engine handle and its stage/worker threads.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) queue: JobQueue,
    pub(crate) metrics: EngineMetrics,
    pub(crate) registry: TemplateRegistry,
    pub(crate) pool: InstancePool,
    /// Consecutive final-failure counts keyed by job fingerprint; entries
    /// at or above `quarantine_threshold` block further submissions.
    pub(crate) quarantine: Mutex<HashMap<u64, u32>>,
    pub(crate) quarantine_threshold: u32,
}

impl Shared {
    /// Record a final (post-retry) failure of this job shape.
    pub(crate) fn quarantine_mark_failure(&self, fingerprint: u64) {
        if self.quarantine_threshold == 0 {
            return;
        }
        let mut q = self.quarantine.lock().expect("quarantine lock");
        *q.entry(fingerprint).or_insert(0) += 1;
    }

    /// A success clears the shape's failure streak (quarantine is for
    /// *consecutively* failing jobs, not jobs that ever failed).
    pub(crate) fn quarantine_clear(&self, fingerprint: u64) {
        if self.quarantine_threshold == 0 {
            return;
        }
        self.quarantine
            .lock()
            .expect("quarantine lock")
            .remove(&fingerprint);
    }

    /// Failure streak recorded for a fingerprint, if any.
    pub(crate) fn quarantine_failures(&self, fingerprint: u64) -> Option<u32> {
        self.quarantine
            .lock()
            .expect("quarantine lock")
            .get(&fingerprint)
            .copied()
    }
}

/// Structural digest of a job's work, used as the quarantine key: two
/// submissions of the same circuit/config (or template/params) collide,
/// while any difference in the work separates them.
pub(crate) fn fingerprint(spec: &JobSpec) -> u64 {
    fn absorb(h: &mut Fnv1a, text: &str) {
        for b in text.bytes() {
            h.write_u64(u64::from(b));
        }
    }
    let mut h = Fnv1a::new();
    match spec {
        JobSpec::OneShot {
            circuit,
            config,
            shots,
            return_state,
        } => {
            absorb(&mut h, "oneshot");
            absorb(&mut h, &format!("{circuit:?}"));
            absorb(&mut h, &format!("{config:?}"));
            h.write_u64(*shots as u64);
            h.write_u64(u64::from(*return_state));
        }
        JobSpec::Sweep {
            template,
            params,
            returning,
        } => {
            absorb(&mut h, "sweep");
            h.write_u64(template.0);
            for p in params {
                h.write_u64(p.to_bits());
            }
            absorb(&mut h, &format!("{returning:?}"));
        }
    }
    h.finish()
}

/// The execution substrate actually running behind the [`Engine`] facade.
#[derive(Debug)]
enum Backend {
    /// The original single-queue worker pool.
    Legacy { workers: Vec<JoinHandle<()>> },
    /// The staged dataflow pipeline.
    Pipeline(Pipeline),
}

/// A running engine. Submit jobs with [`Engine::submit`]; stop it with
/// [`Engine::shutdown`] (drains) or [`Engine::shutdown_now`] (drops queued
/// jobs). Dropping a running engine behaves like `shutdown_now`.
#[derive(Debug)]
pub struct Engine {
    shared: Arc<Shared>,
    backend: Backend,
    next_id: AtomicU64,
}

impl Engine {
    /// Start the execution substrate selected by [`EngineConfig::model`].
    #[must_use]
    pub fn start(config: EngineConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            metrics: EngineMetrics::default(),
            registry: TemplateRegistry::default(),
            pool: InstancePool::new(config.pool_max_per_key),
            quarantine: Mutex::new(HashMap::new()),
            quarantine_threshold: config.quarantine_threshold,
        });
        let backend = match config.model {
            ExecutionModel::Pipeline => Backend::Pipeline(Pipeline::start(&shared, &config)),
            ExecutionModel::Legacy => {
                let workers = (0..config.workers.max(1))
                    .map(|i| {
                        let shared = Arc::clone(&shared);
                        let max_batch = config.max_batch.max(1);
                        std::thread::Builder::new()
                            .name(format!("svsim-engine-{i}"))
                            .spawn(move || worker_loop(&shared, max_batch, i))
                            .expect("spawn engine worker")
                    })
                    .collect();
                Backend::Legacy { workers }
            }
        };
        Self {
            shared,
            backend,
            next_id: AtomicU64::new(0),
        }
    }

    /// Compile and register a parameterized template for sweep jobs.
    ///
    /// # Errors
    /// Propagates template compilation errors.
    pub fn register_template(&self, name: &str, circuit: &ParamCircuit) -> SvResult<TemplateId> {
        self.shared.registry.register(name, circuit)
    }

    /// Compile, pre-fuse (dense `window`-qubit sweep kernels, symbolic
    /// angle slots preserved), and register a template for sweep jobs.
    /// `window == 0` is identical to [`Engine::register_template`].
    ///
    /// # Errors
    /// Propagates template compilation errors.
    pub fn register_template_fused(
        &self,
        name: &str,
        circuit: &ParamCircuit,
        window: u8,
    ) -> SvResult<TemplateId> {
        self.shared.registry.register_fused(name, circuit, window)
    }

    /// Metadata for a registered template.
    #[must_use]
    pub fn template_info(&self, id: TemplateId) -> Option<TemplateInfo> {
        self.shared.registry.info(id)
    }

    /// Submit a job. Never blocks: a full admit queue, an exhausted
    /// in-flight budget, or a malformed sweep is refused immediately —
    /// this *is* the pipeline's admit stage.
    ///
    /// # Errors
    /// [`SubmitError`] describing why admission failed.
    pub fn submit(&self, request: JobRequest) -> Result<JobHandle, SubmitError> {
        let fp = (self.shared.quarantine_threshold > 0).then(|| fingerprint(&request.spec));
        if let Some(fp) = fp {
            if let Some(failures) = self.shared.quarantine_failures(fp) {
                if failures >= self.shared.quarantine_threshold {
                    self.shared
                        .metrics
                        .quarantined
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::Quarantined { failures });
                }
            }
        }
        if let JobSpec::Sweep {
            template, params, ..
        } = &request.spec
        {
            let info = self
                .shared
                .registry
                .info(*template)
                .ok_or(SubmitError::UnknownTemplate(*template))?;
            if params.len() < info.n_vars {
                return Err(SubmitError::BadParamCount {
                    expected: info.n_vars,
                    got: params.len(),
                });
            }
        }
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let cell = Arc::new(JobCell::default());
        let queued = QueuedJob {
            request,
            cell: Arc::clone(&cell),
            enqueued_at: Instant::now(),
        };
        let admitted = match &self.backend {
            Backend::Legacy { .. } => self.shared.queue.push(queued).map_err(|(e, _dropped)| e),
            Backend::Pipeline(p) => p.admit(&self.shared, queued, fp),
        };
        match admitted {
            Ok(()) => {
                self.shared
                    .metrics
                    .submitted
                    .fetch_add(1, Ordering::Relaxed);
                Ok(JobHandle { id, cell })
            }
            Err(e) => {
                self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Jobs waiting at queue/stage boundaries right now (not executing).
    #[must_use]
    pub fn queued(&self) -> usize {
        match &self.backend {
            Backend::Legacy { .. } => self.shared.queue.len(),
            Backend::Pipeline(p) => p.depth(),
        }
    }

    /// Job shapes currently quarantined (failure streak at or above the
    /// threshold).
    #[must_use]
    pub fn quarantined_shapes(&self) -> usize {
        if self.shared.quarantine_threshold == 0 {
            return 0;
        }
        self.shared
            .quarantine
            .lock()
            .expect("quarantine lock")
            .values()
            .filter(|&&n| n >= self.shared.quarantine_threshold)
            .count()
    }

    /// Point-in-time metrics.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut s = self.shared.metrics.snapshot();
        s.pool_created = self.shared.pool.created.load(Ordering::Relaxed);
        s.pool_reused = self.shared.pool.reused.load(Ordering::Relaxed);
        if let Backend::Pipeline(p) = &self.backend {
            s.stages = p.stage_snapshots();
            s.mem_in_flight_bytes = p.budget.in_flight_bytes();
            s.mem_high_water_bytes = p.budget.high_water_bytes();
            s.mem_limit_bytes = p.budget.limit_bytes();
        }
        s
    }

    /// Stop accepting work, flush every stage in topological order so all
    /// queued jobs run to completion, join the threads, and return the
    /// final metrics.
    #[must_use = "final metrics summarize the engine's whole life"]
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop_backend(true);
        self.metrics()
    }

    /// Stop immediately: queued jobs fail with [`JobError::Shutdown`];
    /// jobs already executing run to completion and still publish.
    #[must_use = "final metrics summarize the engine's whole life"]
    pub fn shutdown_now(mut self) -> MetricsSnapshot {
        self.stop_backend(false);
        self.metrics()
    }

    /// Tear the substrate down (idempotent — `Drop` runs it again after an
    /// explicit shutdown and finds nothing left to do).
    fn stop_backend(&mut self, drain: bool) {
        match &mut self.backend {
            Backend::Legacy { workers } => {
                for job in self.shared.queue.close(drain) {
                    self.shared
                        .metrics
                        .shutdown_dropped
                        .fetch_add(1, Ordering::Relaxed);
                    job.cell.finish(Err(JobError::Shutdown));
                }
                for w in workers.drain(..) {
                    let _ = w.join();
                }
            }
            Backend::Pipeline(p) => p.stop(&self.shared, drain),
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.stop_backend(false);
    }
}

/// One legacy worker: pop (possibly coalesced) work until the queue
/// closes, doing every pipeline stage itself. `worker` is this thread's
/// index — the "PE" rank that `Exec`-level injected faults key off.
fn worker_loop(shared: &Shared, max_batch: usize, worker: usize) {
    let mut templates = WorkerTemplates::default();
    while let Some(batch) = shared.queue.pop_batch(max_batch) {
        let dequeued = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for job in batch {
            shared
                .metrics
                .queue_wait
                .record(dequeued.saturating_duration_since(job.enqueued_at));
            if job.cell.cancelled.load(Ordering::Acquire) {
                shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                job.cell.finish(Err(JobError::Cancelled));
            } else if job.request.deadline.is_some_and(|d| dequeued > d) {
                shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
                job.cell.finish(Err(JobError::Expired));
            } else {
                live.push(job);
            }
        }
        let Some(head) = live.first() else { continue };
        match head.request.spec {
            // One-shots never coalesce, so `live` holds at most one.
            JobSpec::OneShot { .. } => {
                for job in live {
                    run_one_shot(shared, JobPacket::bare(job), worker);
                }
            }
            JobSpec::Sweep { .. } => {
                let pkts = live.into_iter().map(JobPacket::bare).collect();
                run_sweep_batch(
                    shared,
                    &mut templates,
                    pkts,
                    worker,
                    &mut |pkt, started, result| publish(shared, &pkt.job, started, result),
                );
            }
        }
    }
}

fn panic_error() -> JobError {
    JobError::Failed(SvError::InvalidConfig(
        "engine worker panicked while executing the job".into(),
    ))
}

/// Consult a job's fault plan for an `Exec`-level fault against this
/// worker (modeling a scheduler-visible executor failure, as opposed to
/// the SHMEM-level faults injected inside scale-out launches).
///
/// # Errors
/// [`SvError::PeFailed`] for `Kill`/`Drop`/`Poison` actions.
fn exec_fault_point(job: &QueuedJob, worker: usize) -> SvResult<()> {
    let Some(plan) = &job.request.fault_plan else {
        return Ok(());
    };
    match plan.check(worker, PeOp::Exec) {
        None => Ok(()),
        Some(FaultAction::Delay(iters)) => {
            for _ in 0..iters {
                std::hint::spin_loop();
            }
            Ok(())
        }
        Some(FaultAction::Kill | FaultAction::Drop | FaultAction::Poison | FaultAction::Hang) => {
            Err(SvError::PeFailed {
                pe: worker,
                op: PeOp::Exec,
            })
        }
        // Torn checkpoint writes are a storage-layer fault, consumed at
        // the simulator's persistence points, not an executor failure.
        Some(FaultAction::TornCheckpoint) => Ok(()),
    }
}

pub(crate) fn publish(
    shared: &Shared,
    job: &QueuedJob,
    started: Instant,
    result: Result<JobOutput, JobError>,
) {
    match &result {
        Ok(_) => shared.metrics.completed.fetch_add(1, Ordering::Relaxed),
        Err(_) => shared.metrics.failed.fetch_add(1, Ordering::Relaxed),
    };
    shared.metrics.execution.record(started.elapsed());
    job.cell.finish(result);
}

/// What the execute stage produced for a one-shot job.
pub(crate) enum ExecOutcome {
    /// Execution succeeded; readback still owes sampling, the optional
    /// state clone, and returning the simulator to the pool.
    Done {
        /// The simulator holding the final state.
        sim: Box<Simulator>,
        /// The run summary execution produced.
        summary: RunSummary,
    },
    /// Execution failed past every retry.
    Fail(JobError),
}

/// Execute a one-shot job with retry-in-place and the self-healing
/// ladder: a transient failure (PE death or hang, barrier expiry, SHMEM
/// breakdown, torn checkpoint write, worker panic) backs off
/// deterministically and re-attempts — resuming from the last good
/// checkpoint when one exists (in memory or recovered from the job's
/// on-disk store), rerunning from scratch otherwise. Under
/// [`DegradePolicy::HalvePes`], repeated failures at one width
/// re-partition the job at half the PEs and transplant the checkpoint
/// into the narrower world.
///
/// A compiled plan carried by the packet drives execution when its shape
/// still matches; degradation or remapping that invalidates it falls back
/// to on-the-fly lowering, bit-identically.
pub(crate) fn execute_one_shot(shared: &Shared, pkt: &JobPacket, worker: usize) -> ExecOutcome {
    let JobSpec::OneShot {
        ref circuit,
        ref config,
        shots,
        return_state,
    } = pkt.job.request.spec
    else {
        unreachable!("dispatched as one-shot");
    };
    let fp = if shared.quarantine_threshold > 0 {
        pkt.fp.unwrap_or_else(|| fingerprint(&pkt.job.request.spec))
    } else {
        0
    };
    let plan = pkt.plan.as_deref();
    let policy = pkt.job.request.retry;
    let degrade = pkt.job.request.degrade;
    // The width/supervision the job is *currently* running at; the
    // degradation ladder narrows it without touching the submitted spec.
    let mut effective = *config;
    if let DegradePolicy::Respawn { max_respawns } = degrade {
        effective.respawn_max = effective.respawn_max.max(max_respawns);
    }
    let mut attempt: u32 = 1;
    let mut first_failure: Option<Instant> = None;
    let mut rung_failures: u32 = 0;
    // Checkpoint carried across a degradation step into the next
    // (half-width) simulator.
    let mut carried: Option<svsim_core::Checkpoint> = None;
    let mut sim = None;
    loop {
        if sim.is_none() {
            match shared.pool.checkout_sim(circuit.n_qubits(), &effective) {
                Ok(s) => sim = Some(s),
                Err(e) => return ExecOutcome::Fail(JobError::Failed(e)),
            }
        }
        let s = sim.as_mut().expect("checked out above");
        // Rewind a retry that has nothing to resume from; a verified
        // checkpoint instead resumes mid-circuit.
        let mut resumable = attempt > 1 && s.checkpoint().is_some_and(|cp| cp.verify().is_ok());
        if let Some(cp) = carried.take() {
            // Checkpoints are full global state (PE-count independent), so
            // the degraded world adopts the wider world's progress as-is.
            match s.adopt_checkpoint(cp) {
                Ok(()) => resumable = true,
                Err(e) => return ExecOutcome::Fail(JobError::Failed(e)),
            }
        }
        if attempt > 1 && !resumable {
            s.reset();
        }
        if let Some(dir) = &pkt.job.request.checkpoint_dir {
            // (Re)open the store every attempt: `reset` detaches it, and
            // `open` resumes the generation counter from the directory.
            match svsim_core::CheckpointStore::open(dir.clone()) {
                Ok(store) => s.set_checkpoint_store(Some(store)),
                Err(e) => return ExecOutcome::Fail(JobError::Failed(e)),
            }
            if attempt > 1 && !resumable {
                // The in-memory checkpoint is gone (torn write, panic,
                // degradation): fall back to the newest loadable on-disk
                // generation. An unrecoverable store reruns from scratch.
                resumable = s.recover_checkpoint_from_store().unwrap_or(false);
            }
        }
        s.set_fault_plan(pkt.job.request.fault_plan.clone());
        let ran = catch_unwind(AssertUnwindSafe(|| {
            exec_fault_point(&pkt.job, worker)?;
            match (resumable, plan) {
                (true, Some(p)) => s.resume_plan(circuit, p),
                (true, None) => s.resume(circuit),
                (false, Some(p)) => s.run_plan(circuit, p),
                (false, None) => s.run(circuit),
            }
        }));
        let outcome = match ran {
            Ok(r) => r.map_err(|e| (retryable(&e), JobError::Failed(e))),
            Err(_) => {
                // The simulator may be mid-mutation; never reuse it.
                sim = None;
                Err((true, panic_error()))
            }
        };
        match outcome {
            Ok(summary) => {
                if let Some(t) = first_failure {
                    shared.metrics.recovery.record(t.elapsed());
                }
                shared
                    .metrics
                    .checkpoint_bytes
                    .fetch_add(summary.checkpoint_bytes, Ordering::Relaxed);
                shared.metrics.add_traffic(&summary.total_traffic());
                shared
                    .metrics
                    .races_detected
                    .fetch_add(summary.races.len() as u64, Ordering::Relaxed);
                shared
                    .metrics
                    .respawned
                    .fetch_add(summary.respawns as u64, Ordering::Relaxed);
                // Credit the communication the remap avoided: the analytic
                // naive-plan cost minus what the remapped run measured.
                if config.remap {
                    if let svsim_core::BackendKind::ScaleOut { n_pes } = config.backend {
                        if n_pes > 1 {
                            let gates: Vec<svsim_ir::Gate> = circuit.gates().copied().collect();
                            let compiled = svsim_core::compile::compile_gates(
                                gates.iter(),
                                circuit.n_qubits(),
                                config.specialized,
                            );
                            let naive = svsim_core::traffic::circuit_traffic(
                                &compiled,
                                circuit.n_qubits(),
                                n_pes as u64,
                            );
                            let t = summary.total_traffic();
                            let measured = t.remote_get_bytes + t.remote_put_bytes;
                            shared.metrics.remote_bytes_saved.fetch_add(
                                naive.remote_bytes.saturating_sub(measured),
                                Ordering::Relaxed,
                            );
                        }
                    }
                }
                shared.quarantine_clear(fp);
                let s = sim.take().expect("simulator ran");
                return ExecOutcome::Done {
                    sim: Box::new(s),
                    summary,
                };
            }
            Err((transient, err)) => {
                if matches!(&err, JobError::Failed(SvError::PeHung { .. })) {
                    shared.metrics.hung.fetch_add(1, Ordering::Relaxed);
                }
                if transient && attempt < policy.max_attempts {
                    first_failure.get_or_insert_with(Instant::now);
                    shared.metrics.retries.fetch_add(1, Ordering::Relaxed);
                    // The degradation ladder: enough failures at this
                    // width step the job down to half the PEs, carrying
                    // its last good checkpoint into the narrower world
                    // (8 → 4 → 2 → 1, floored at `min_pes`).
                    if let DegradePolicy::HalvePes {
                        failures_per_rung,
                        min_pes,
                    } = degrade
                    {
                        rung_failures += 1;
                        if rung_failures >= failures_per_rung.max(1) {
                            if let svsim_core::BackendKind::ScaleOut { n_pes } = effective.backend {
                                let next = n_pes / 2;
                                if next >= min_pes.max(1) {
                                    carried = sim
                                        .as_mut()
                                        .and_then(svsim_core::Simulator::take_checkpoint)
                                        .filter(|cp| cp.verify().is_ok());
                                    effective.backend =
                                        svsim_core::BackendKind::ScaleOut { n_pes: next };
                                    sim = None;
                                    rung_failures = 0;
                                    shared.metrics.degraded.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                    continue;
                }
                // Final failure: drop the simulator (its state reflects
                // the failed run) and extend the shape's failure streak —
                // recording the degraded shape too when the ladder was
                // descended, so the narrowed fingerprint carries the
                // strike as well.
                drop(sim);
                shared.quarantine_mark_failure(fp);
                if effective.backend != config.backend {
                    shared.quarantine_mark_failure(fingerprint(&JobSpec::OneShot {
                        circuit: Arc::clone(circuit),
                        config: effective,
                        shots,
                        return_state,
                    }));
                }
                return ExecOutcome::Fail(err);
            }
        }
    }
}

/// The readback stage body for a successful one-shot: sample, clone the
/// requested state, detach the job's fault plan and checkpoint store, and
/// return the simulator to the pool — *before* the caller publishes, so a
/// submit-wait-submit client always finds the instance available.
pub(crate) fn readback_one_shot(
    shared: &Shared,
    job: &QueuedJob,
    mut sim: Box<Simulator>,
    summary: RunSummary,
) -> JobOutput {
    let JobSpec::OneShot {
        shots,
        return_state,
        ..
    } = job.request.spec
    else {
        unreachable!("dispatched as one-shot");
    };
    let samples = (shots > 0).then(|| {
        let mut hist = BTreeMap::new();
        for outcome in sim.sample(shots) {
            *hist.entry(outcome).or_insert(0) += 1;
        }
        hist
    });
    let state = return_state.then(|| sim.state().clone());
    sim.set_fault_plan(None);
    sim.set_checkpoint_store(None);
    shared.pool.checkin_sim(*sim);
    JobOutput::OneShot {
        summary,
        state,
        samples,
    }
}

/// Execute and publish a one-shot job in place — the legacy path, where
/// one worker runs every stage itself.
fn run_one_shot(shared: &Shared, pkt: JobPacket, worker: usize) {
    let started = Instant::now();
    match execute_one_shot(shared, &pkt, worker) {
        ExecOutcome::Done { sim, summary } => {
            let output = readback_one_shot(shared, &pkt.job, sim, summary);
            publish(shared, &pkt.job, started, Ok(output));
        }
        ExecOutcome::Fail(e) => publish(shared, &pkt.job, started, Err(e)),
    }
}

/// Execute a coalesced group of sweep jobs — all for the same template —
/// against one worker-local template clone and one pooled state buffer,
/// handing each finished member to `sink` (the pipeline forwards to the
/// readback stage; the legacy path publishes directly).
///
/// Deadlines and cancellation are re-checked *per member* right before its
/// execution, so a long batch cannot carry an already-dead job to a result
/// nobody wants. Transient per-job failures retry under the job's policy
/// (`run_into` resets the buffer, so re-running a trial is idempotent).
pub(crate) fn run_sweep_batch(
    shared: &Shared,
    templates: &mut WorkerTemplates,
    jobs: Vec<JobPacket>,
    worker: usize,
    sink: &mut dyn FnMut(JobPacket, Instant, Result<JobOutput, JobError>),
) {
    shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .metrics
        .batched_jobs
        .fetch_add(jobs.len() as u64, Ordering::Relaxed);
    let JobSpec::Sweep { template, .. } = jobs[0].job.request.spec else {
        unreachable!("dispatched as sweep");
    };

    let mut fail_all = |jobs: Vec<JobPacket>, e: SvError| {
        let started = Instant::now();
        for pkt in jobs {
            sink(pkt, started, Err(JobError::Failed(e.clone())));
        }
    };
    let Some(tpl) = templates.get_mut(template, &shared.registry) else {
        fail_all(
            jobs,
            SvError::Undefined(format!("template {template} is not registered")),
        );
        return;
    };
    let mut buf = match shared.pool.checkout_buffer(tpl.n_qubits()) {
        Ok(buf) => buf,
        Err(e) => {
            fail_all(jobs, e);
            return;
        }
    };

    for pkt in jobs {
        let started = Instant::now();
        // Mid-sweep admission re-check: earlier members of this batch may
        // have run for a while — a job cancelled or expired since dequeue
        // must not execute.
        if pkt.job.cell.cancelled.load(Ordering::Acquire) {
            shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
            pkt.job.cell.finish(Err(JobError::Cancelled));
            continue;
        }
        if pkt.job.request.deadline.is_some_and(|d| started > d) {
            shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
            pkt.job.cell.finish(Err(JobError::Expired));
            continue;
        }
        let JobSpec::Sweep {
            ref params,
            returning,
            ..
        } = pkt.job.request.spec
        else {
            unreachable!("coalesced batches are sweep-only");
        };
        let fp = if shared.quarantine_threshold > 0 {
            pkt.fp.unwrap_or_else(|| fingerprint(&pkt.job.request.spec))
        } else {
            0
        };
        let policy = pkt.job.request.retry;
        let mut attempt: u32 = 1;
        let mut first_failure: Option<Instant> = None;
        let result = loop {
            let ran = catch_unwind(AssertUnwindSafe(|| -> SvResult<JobOutput> {
                exec_fault_point(&pkt.job, worker)?;
                tpl.run_into(params, &mut buf)?;
                Ok(match returning {
                    SweepReturn::State => JobOutput::Sweep {
                        state: Some(buf.clone()),
                        value: None,
                    },
                    SweepReturn::ExpZ(mask) => JobOutput::Sweep {
                        state: None,
                        value: Some(measure::expval_z_mask(&buf, mask)),
                    },
                })
            }));
            let outcome = match ran {
                Ok(r) => r.map_err(|e| (retryable(&e), JobError::Failed(e))),
                Err(_) => Err((true, panic_error())),
            };
            match outcome {
                Ok(output) => {
                    if let Some(t) = first_failure {
                        shared.metrics.recovery.record(t.elapsed());
                    }
                    shared.quarantine_clear(fp);
                    break Ok(output);
                }
                Err((transient, err)) => {
                    if transient && attempt < policy.max_attempts {
                        first_failure.get_or_insert_with(Instant::now);
                        shared.metrics.retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(policy.backoff(attempt));
                        attempt += 1;
                        continue;
                    }
                    shared.quarantine_mark_failure(fp);
                    break Err(err);
                }
            }
        };
        sink(pkt, started, result);
    }
    shared.pool.checkin_buffer(buf);
}
