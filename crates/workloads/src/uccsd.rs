//! UCCSD-VQE ansatz generation (paper §5, Figures 16-17).
//!
//! Unitary Coupled Cluster with Singles and Doubles under the Jordan-Wigner
//! mapping: occupied spin-orbitals `0..n_elec`, virtuals `n_elec..n`.
//! Every excitation lowers to Pauli exponentials via
//! [`svsim_ir::pauli::exp_pauli_gates`]; the Hartree-Fock reference is
//! prepared with X gates on the occupied orbitals.

use svsim_ir::pauli::{exp_pauli_gates, Pauli, PauliString};
use svsim_ir::Circuit;
use svsim_types::SvResult;

/// A UCCSD ansatz over `n_qubits` spin-orbitals with `n_elec` electrons.
#[derive(Debug, Clone)]
pub struct UccsdAnsatz {
    n_qubits: u32,
    n_elec: u32,
    singles: Vec<(u32, u32)>,
    doubles: Vec<(u32, u32, u32, u32)>,
}

impl UccsdAnsatz {
    /// Enumerate all singles `(i -> a)` and doubles `(i, j -> a, b)`.
    #[must_use]
    pub fn new(n_qubits: u32, n_elec: u32) -> Self {
        assert!(n_elec < n_qubits, "need at least one virtual orbital");
        let mut singles = Vec::new();
        for i in 0..n_elec {
            for a in n_elec..n_qubits {
                singles.push((i, a));
            }
        }
        let mut doubles = Vec::new();
        for i in 0..n_elec {
            for j in i + 1..n_elec {
                for a in n_elec..n_qubits {
                    for b in a + 1..n_qubits {
                        doubles.push((i, j, a, b));
                    }
                }
            }
        }
        Self {
            n_qubits,
            n_elec,
            singles,
            doubles,
        }
    }

    /// Register width.
    #[must_use]
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Number of variational parameters (one per excitation).
    #[must_use]
    pub fn n_params(&self) -> usize {
        self.singles.len() + self.doubles.len()
    }

    /// Singles list.
    #[must_use]
    pub fn singles(&self) -> &[(u32, u32)] {
        &self.singles
    }

    /// Doubles list.
    #[must_use]
    pub fn doubles(&self) -> &[(u32, u32, u32, u32)] {
        &self.doubles
    }

    /// Build the ansatz circuit for the given parameters.
    ///
    /// # Errors
    /// Parameter-count mismatch or width errors.
    pub fn build(&self, params: &[f64]) -> SvResult<Circuit> {
        if params.len() != self.n_params() {
            return Err(svsim_types::SvError::InvalidConfig(format!(
                "expected {} parameters, got {}",
                self.n_params(),
                params.len()
            )));
        }
        let mut c = Circuit::new(self.n_qubits);
        // Hartree-Fock reference |1...10...0>.
        for q in 0..self.n_elec {
            c.apply(svsim_ir::GateKind::X, &[q], &[])?;
        }
        let (single_params, double_params) = params.split_at(self.singles.len());
        for (&(i, a), &theta) in self.singles.iter().zip(single_params) {
            for (string, angle) in single_terms(i, a, theta)? {
                for g in exp_pauli_gates(angle, &string) {
                    c.push_gate(g)?;
                }
            }
        }
        for (&(i, j, a, b), &theta) in self.doubles.iter().zip(double_params) {
            for (string, angle) in double_terms(i, j, a, b, theta)? {
                for g in exp_pauli_gates(angle, &string) {
                    c.push_gate(g)?;
                }
            }
        }
        Ok(c)
    }
}

/// JW string with a Pauli at `lo`, another at `hi`, and Z on everything in
/// between.
fn jw_string(lo: (Pauli, u32), hi: (Pauli, u32), extra: &[(Pauli, u32)]) -> SvResult<PauliString> {
    let mut factors = vec![lo, hi];
    for q in lo.1 + 1..hi.1 {
        if !extra.iter().any(|&(_, eq)| eq == q) && !factors.iter().any(|&(_, fq)| fq == q) {
            factors.push((Pauli::Z, q));
        }
    }
    factors.extend_from_slice(extra);
    PauliString::new(&factors)
}

/// The two Pauli exponentials of a single excitation `exp(theta (a†_a a_i - h.c.))`:
/// `exp(i theta/2 X_a Z.. Y_i) exp(-i theta/2 Y_a Z.. X_i)`.
fn single_terms(i: u32, a: u32, theta: f64) -> SvResult<Vec<(PauliString, f64)>> {
    // exp_pauli_gates(angle, P) implements exp(-i angle/2 P).
    Ok(vec![
        (jw_string((Pauli::Y, i), (Pauli::X, a), &[])?, -theta),
        (jw_string((Pauli::X, i), (Pauli::Y, a), &[])?, theta),
    ])
}

/// The eight Pauli exponentials of a double excitation
/// `exp(theta (a†_a a†_b a_i a_j - h.c.))` for `i < j < a < b`.
fn double_terms(i: u32, j: u32, a: u32, b: u32, theta: f64) -> SvResult<Vec<(PauliString, f64)>> {
    debug_assert!(i < j && j < a && a < b);
    // (y_a, y_b, y_i, y_j) selections with odd total Y count; the sign of
    // the rotation follows i^{y_i + y_j - y_a - y_b} (see crate docs):
    // s = 1 mod 4 -> angle -theta/4, s = 3 mod 4 -> angle +theta/4.
    let choices: [(u8, u8, u8, u8, f64); 8] = [
        (0, 0, 0, 1, -1.0),
        (0, 0, 1, 0, -1.0),
        (1, 1, 1, 0, 1.0),
        (1, 1, 0, 1, 1.0),
        (1, 0, 0, 0, 1.0),
        (0, 1, 0, 0, 1.0),
        (1, 0, 1, 1, -1.0),
        (0, 1, 1, 1, -1.0),
    ];
    let p = |y: u8| if y == 1 { Pauli::Y } else { Pauli::X };
    let mut out = Vec::with_capacity(8);
    for (ya, yb, yi, yj, sign) in choices {
        let mut factors = vec![(p(yi), i), (p(yj), j), (p(ya), a), (p(yb), b)];
        for q in i + 1..j {
            factors.push((Pauli::Z, q));
        }
        for q in a + 1..b {
            factors.push((Pauli::Z, q));
        }
        out.push((PauliString::new(&factors)?, sign * theta / 4.0));
    }
    Ok(out)
}

/// Closed-form gate count of the ansatz (without materializing the
/// circuit) — used for Figure 17, where the largest instance has millions
/// of gates.
#[must_use]
pub fn uccsd_gate_count(n_qubits: u32, n_elec: u32) -> u64 {
    // Per Pauli-exponential of weight w with x X-factors and y Y-factors:
    // basis changes 2x + 4y, ladder 2(w-1) CX, 1 RZ.
    let term_cost = |w: u64, x: u64, y: u64| 2 * x + 4 * y + 2 * (w - 1) + 1;
    let mut gates = u64::from(n_elec); // HF preparation X gates
    for i in 0..n_elec {
        for a in n_elec..n_qubits {
            let w = u64::from(a - i) + 1;
            // Two terms: XY and YX ends (one X + one Y each).
            gates += 2 * term_cost(w, 1, 1);
        }
    }
    for i in 0..n_elec {
        for j in i + 1..n_elec {
            for a in n_elec..n_qubits {
                for b in a + 1..n_qubits {
                    let w = 4 + u64::from(j - i - 1) + u64::from(b - a - 1);
                    // Y counts per term: 1, 1, 3, 3, 1, 1, 3, 3.
                    for y in [1u64, 1, 3, 3, 1, 1, 3, 3] {
                        gates += term_cost(w, 4 - y, y);
                    }
                }
            }
        }
    }
    gates
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_core::{SimConfig, Simulator};

    #[test]
    fn excitation_enumeration() {
        let a = UccsdAnsatz::new(4, 2);
        assert_eq!(a.singles(), &[(0, 2), (0, 3), (1, 2), (1, 3)]);
        assert_eq!(a.doubles(), &[(0, 1, 2, 3)]);
        assert_eq!(a.n_params(), 5);
    }

    #[test]
    fn zero_parameters_give_hartree_fock() {
        let a = UccsdAnsatz::new(4, 2);
        let c = a.build(&[0.0; 5]).unwrap();
        let mut sim = Simulator::new(4, SimConfig::single_device()).unwrap();
        sim.run(&c).unwrap();
        let p = sim.probabilities();
        assert!((p[0b0011] - 1.0).abs() < 1e-12, "HF state |0011>");
    }

    #[test]
    fn ansatz_preserves_particle_number() {
        let ansatz = UccsdAnsatz::new(4, 2);
        let params = [0.13, -0.21, 0.08, 0.19, 0.33];
        let c = ansatz.build(&params).unwrap();
        let mut sim = Simulator::new(4, SimConfig::single_device()).unwrap();
        sim.run(&c).unwrap();
        // All populated basis states must have exactly 2 set bits.
        for (idx, p) in sim.probabilities().iter().enumerate() {
            if *p > 1e-12 {
                assert_eq!(
                    (idx as u64).count_ones(),
                    2,
                    "state {idx:#b} with p={p} breaks particle number"
                );
            }
        }
        assert!((sim.state().norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn double_excitation_moves_population() {
        let ansatz = UccsdAnsatz::new(4, 2);
        // Only the double excitation active.
        let c = ansatz.build(&[0.0, 0.0, 0.0, 0.0, 0.5]).unwrap();
        let mut sim = Simulator::new(4, SimConfig::single_device()).unwrap();
        sim.run(&c).unwrap();
        let p = sim.probabilities();
        // Population moves |0011> -> |1100>.
        assert!(p[0b0011] < 1.0 - 1e-3);
        assert!(p[0b1100] > 1e-3);
        // Nothing else is touched.
        let other: f64 = (0..16)
            .filter(|&i| i != 0b0011 && i != 0b1100)
            .map(|i| p[i])
            .sum();
        assert!(other < 1e-10, "leakage {other}");
    }

    #[test]
    fn gate_count_matches_materialized_circuit() {
        for (n, e) in [(4u32, 2u32), (6, 2), (6, 3), (8, 4)] {
            let ansatz = UccsdAnsatz::new(n, e);
            let params = vec![0.1; ansatz.n_params()];
            let c = ansatz.build(&params).unwrap();
            assert_eq!(
                c.stats().gates as u64,
                uccsd_gate_count(n, e),
                "closed form vs generated for n={n}, e={e}"
            );
        }
    }

    #[test]
    fn gate_count_scaling_matches_figure17_shape() {
        // Paper: ~600 gates at 5-6 qubits up to 2.3M at 24 qubits.
        let small = uccsd_gate_count(6, 3);
        let large = uccsd_gate_count(24, 12);
        assert!(small > 200 && small < 3000, "small count {small}");
        assert!(
            large > 500_000,
            "24-qubit UCCSD must reach millions of gates, got {large}"
        );
        // Strictly increasing in qubit count.
        let mut prev = 0;
        for n in 4..=24 {
            let g = uccsd_gate_count(n, n / 2);
            assert!(g > prev);
            prev = g;
        }
    }
}
