//! Quantum arithmetic circuits: the Cuccaro ripple-carry adder, Toffoli
//! multipliers, and the constant-multiply instance of Table 4.

use svsim_ir::{Circuit, GateKind};
use svsim_types::SvResult;

/// MAJ block of the Cuccaro adder.
fn maj(c: &mut Circuit, a: u32, b: u32, x: u32) -> SvResult<()> {
    c.apply(GateKind::CX, &[x, b], &[])?;
    c.apply(GateKind::CX, &[x, a], &[])?;
    c.apply(GateKind::CCX, &[a, b, x], &[])
}

/// UMA (unmajority-and-add) block of the Cuccaro adder.
fn uma(c: &mut Circuit, a: u32, b: u32, x: u32) -> SvResult<()> {
    c.apply(GateKind::CCX, &[a, b, x], &[])?;
    c.apply(GateKind::CX, &[x, a], &[])?;
    c.apply(GateKind::CX, &[a, b], &[])
}

/// Append a Cuccaro ripple-carry adder computing `b += a` over `width`-bit
/// registers: qubits `a[i] = a_base + i`, `b[i] = b_base + i`, carry-in
/// ancilla `cin` (|0>), carry-out `cout`.
///
/// # Errors
/// Width errors.
pub fn append_cuccaro_adder(
    c: &mut Circuit,
    a_base: u32,
    b_base: u32,
    width: u32,
    cin: u32,
    cout: u32,
) -> SvResult<()> {
    assert!(width >= 1);
    maj(c, cin, b_base, a_base)?;
    for i in 1..width {
        maj(c, a_base + i - 1, b_base + i, a_base + i)?;
    }
    c.apply(GateKind::CX, &[a_base + width - 1, cout], &[])?;
    for i in (1..width).rev() {
        uma(c, a_base + i - 1, b_base + i, a_base + i)?;
    }
    uma(c, cin, b_base, a_base)?;
    Ok(())
}

/// QASMBench-style `bigadder`: two `width`-bit registers plus carry-in and
/// carry-out (total `2*width + 2` qubits), with the inputs prepared to
/// exercise a full carry chain.
///
/// Layout: `a = [0, width)`, `b = [width, 2*width)`, `cin = 2*width`,
/// `cout = 2*width + 1`.
///
/// # Errors
/// Width errors.
pub fn bigadder(width: u32, a_val: u64, b_val: u64) -> SvResult<Circuit> {
    let n = 2 * width + 2;
    let mut c = Circuit::with_cbits(n, width + 1);
    for i in 0..width {
        if (a_val >> i) & 1 == 1 {
            c.apply(GateKind::X, &[i], &[])?;
        }
        if (b_val >> i) & 1 == 1 {
            c.apply(GateKind::X, &[width + i], &[])?;
        }
    }
    append_cuccaro_adder(&mut c, 0, width, width, 2 * width, 2 * width + 1)?;
    for i in 0..width {
        c.measure(width + i, i)?;
    }
    c.measure(2 * width + 1, width)?;
    Ok(c)
}

/// Toffoli-network multiplier: `prod = a * b` by shift-and-add with
/// AND partial products.
///
/// Layout: `a = [0, wa)`, `b = [wa, wa+wb)`, `prod = [wa+wb, wa+wb+wa+wb)`,
/// plus `wa` ancillas for partial-product bits and carries. Total qubits:
/// `2*(wa + wb) + wa + 1`.
///
/// The construction: for each bit `j` of `b`, AND rows of `a` into an
/// ancilla and ripple it into the product (a faithful schoolbook
/// multiplier, like the QASMBench `multiplier` family).
///
/// # Errors
/// Width errors.
pub fn multiplier(wa: u32, wb: u32, a_val: u64, b_val: u64) -> SvResult<Circuit> {
    let layout = MultiplierLayout::new(wa, wb);
    let mut c = Circuit::with_cbits(layout.total, wa + wb);
    for i in 0..wa {
        if (a_val >> i) & 1 == 1 {
            c.apply(GateKind::X, &[layout.a + i], &[])?;
        }
    }
    for j in 0..wb {
        if (b_val >> j) & 1 == 1 {
            c.apply(GateKind::X, &[layout.b + j], &[])?;
        }
    }
    append_multiplier(&mut c, &layout)?;
    for k in 0..wa + wb {
        c.measure(layout.prod + k, k)?;
    }
    Ok(c)
}

/// Register layout of [`multiplier`].
#[derive(Debug, Clone, Copy)]
pub struct MultiplierLayout {
    /// First operand base.
    pub a: u32,
    /// Second operand base.
    pub b: u32,
    /// Product base (width `wa + wb`).
    pub prod: u32,
    /// Ancilla base (width `wa + 1`: partial-product row + carry).
    pub anc: u32,
    /// First operand width.
    pub wa: u32,
    /// Second operand width.
    pub wb: u32,
    /// Total qubits.
    pub total: u32,
}

impl MultiplierLayout {
    /// Compute the layout for operand widths `wa`, `wb`.
    #[must_use]
    pub fn new(wa: u32, wb: u32) -> Self {
        let a = 0;
        let b = wa;
        let prod = wa + wb;
        let anc = prod + wa + wb;
        Self {
            a,
            b,
            prod,
            anc,
            wa,
            wb,
            total: anc + wa + 1,
        }
    }
}

/// Append the multiplier network to an existing circuit.
///
/// # Errors
/// Width errors.
pub fn append_multiplier(c: &mut Circuit, l: &MultiplierLayout) -> SvResult<()> {
    // Row ancillas [anc, anc+wa) hold the partial products of one row;
    // anc+wa is the ripple carry-in (always reset to |0> between rows).
    for j in 0..l.wb {
        // Compute row j: anc[i] = a[i] AND b[j].
        for i in 0..l.wa {
            c.apply(GateKind::CCX, &[l.a + i, l.b + j, l.anc + i], &[])?;
        }
        // Ripple-add the row into prod[j .. j+wa], carry into prod[j+wa].
        append_cuccaro_adder(c, l.anc, l.prod + j, l.wa, l.anc + l.wa, l.prod + j + l.wa)?;
        // Uncompute the row ancillas.
        for i in 0..l.wa {
            c.apply(GateKind::CCX, &[l.a + i, l.b + j, l.anc + i], &[])?;
        }
    }
    Ok(())
}

/// The Table 4 `multiply` instance: computing 3 x 5 in a quantum circuit.
///
/// # Errors
/// Width errors.
pub fn multiply_3x5() -> SvResult<Circuit> {
    // 2-bit x 3-bit operands: 2 + 3 + 5 product + 3 ancilla = 13 qubits.
    multiplier(2, 3, 3, 5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_core::{SimConfig, Simulator};

    fn run_cbits(c: &Circuit) -> u64 {
        let mut sim =
            Simulator::new(c.n_qubits(), SimConfig::single_device().with_seed(1)).unwrap();
        sim.run(c).unwrap().cbits
    }

    #[test]
    fn adder_computes_sums() {
        for (a, b) in [(0u64, 0u64), (1, 1), (5, 7), (15, 15), (9, 6)] {
            let c = bigadder(4, a, b).unwrap();
            let out = run_cbits(&c);
            assert_eq!(out, a + b, "{a} + {b}");
        }
    }

    #[test]
    fn adder_is_reversible() {
        // Running the adder twice with b' = a + b gives b'' = 2a + b mod 2^w
        // — just verify the ancillas return to |0> after one pass by
        // checking the state is a single basis state.
        let c = bigadder(3, 3, 4).unwrap();
        let mut unmeasured = Circuit::new(c.n_qubits());
        for op in c.ops() {
            if let svsim_ir::Op::Gate(g) = op {
                unmeasured.push_gate(*g).unwrap();
            }
        }
        let mut sim = Simulator::new(c.n_qubits(), SimConfig::single_device()).unwrap();
        sim.run(&unmeasured).unwrap();
        let probs = sim.probabilities();
        let nonzero: Vec<usize> = (0..probs.len()).filter(|&i| probs[i] > 1e-12).collect();
        assert_eq!(nonzero.len(), 1, "classical input must stay classical");
    }

    #[test]
    fn multiplier_computes_products() {
        for (a, b) in [(0u64, 0u64), (1, 3), (3, 5), (3, 7), (2, 4)] {
            let c = multiplier(2, 3, a & 0b11, b).unwrap();
            let out = run_cbits(&c);
            assert_eq!(out, (a & 0b11) * b, "{a} * {b}");
        }
    }

    #[test]
    fn multiply_3x5_is_15_on_13_qubits() {
        let c = multiply_3x5().unwrap();
        assert_eq!(c.n_qubits(), 13);
        assert_eq!(run_cbits(&c), 15);
    }

    #[test]
    fn multiplier_3x3_is_15_qubits() {
        // The Table 4 `multiplier` instance footprint.
        let l = MultiplierLayout::new(3, 3);
        assert_eq!(l.total, 16);
        // 2-bit x 3-bit is the 13-qubit instance.
        assert_eq!(MultiplierLayout::new(2, 3).total, 13);
    }
}
