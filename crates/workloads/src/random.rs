//! Random circuit generation for cross-backend differential testing and
//! microbenchmarks.

use svsim_ir::{Circuit, GateKind};
use svsim_types::SvRng;

/// Generate a random circuit of `n_gates` gates drawn from the full ISA
/// (unitary gates only, so runs are deterministic and comparable).
///
/// # Panics
/// Never for `n_qubits >= 5` (every ISA gate fits); narrower registers
/// restrict the draw to gates that fit.
#[must_use]
pub fn random_circuit(n_qubits: u32, n_gates: usize, seed: u64) -> Circuit {
    let mut rng = SvRng::seed_from_u64(seed);
    let mut c = Circuit::new(n_qubits);
    let pool: Vec<GateKind> = GateKind::ALL
        .iter()
        .copied()
        .filter(|k| k.n_qubits() as u32 <= n_qubits)
        .collect();
    assert!(!pool.is_empty());
    while c.len() < n_gates {
        let kind = pool[rng.range_usize(0, pool.len())];
        let mut qubits: Vec<u32> = Vec::with_capacity(kind.n_qubits());
        while qubits.len() < kind.n_qubits() {
            let q = rng.range_usize(0, n_qubits as usize) as u32;
            if !qubits.contains(&q) {
                qubits.push(q);
            }
        }
        let params: Vec<f64> = (0..kind.n_params())
            .map(|_| rng.range_f64(-std::f64::consts::PI, std::f64::consts::PI))
            .collect();
        c.apply(kind, &qubits, &params).expect("validated draw");
    }
    c
}

/// Random circuit restricted to 1-qubit gates + CX (the basic/standard
/// subset) — handy for baseline comparisons.
#[must_use]
pub fn random_basic_circuit(n_qubits: u32, n_gates: usize, seed: u64) -> Circuit {
    let mut rng = SvRng::seed_from_u64(seed);
    let mut c = Circuit::new(n_qubits);
    let pool = [
        GateKind::H,
        GateKind::X,
        GateKind::T,
        GateKind::S,
        GateKind::RZ,
        GateKind::RX,
        GateKind::U3,
        GateKind::CX,
        GateKind::CX, // weight CX up to mimic entangling-heavy workloads
    ];
    while c.len() < n_gates {
        let kind = pool[rng.range_usize(0, pool.len())];
        if kind == GateKind::CX && n_qubits >= 2 {
            let a = rng.range_usize(0, n_qubits as usize) as u32;
            let mut b = rng.range_usize(0, n_qubits as usize) as u32;
            while b == a {
                b = rng.range_usize(0, n_qubits as usize) as u32;
            }
            c.apply(kind, &[a, b], &[]).expect("cx");
        } else if kind != GateKind::CX {
            let q = rng.range_usize(0, n_qubits as usize) as u32;
            let params: Vec<f64> = (0..kind.n_params())
                .map(|_| rng.range_f64(-1.0, 1.0))
                .collect();
            c.apply(kind, &[q], &params).expect("1q");
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_core::{SimConfig, Simulator};

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(random_circuit(6, 50, 1), random_circuit(6, 50, 1));
        assert_ne!(random_circuit(6, 50, 1), random_circuit(6, 50, 2));
    }

    #[test]
    fn runs_and_stays_normalized() {
        let c = random_circuit(6, 120, 3);
        let mut sim = Simulator::new(6, SimConfig::single_device()).unwrap();
        sim.run(&c).unwrap();
        assert!((sim.state().norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn narrow_register_restricts_pool() {
        let c = random_circuit(2, 30, 5);
        assert!(c.gates().all(|g| g.kind().n_qubits() <= 2));
    }

    #[test]
    fn basic_pool_is_basic() {
        let c = random_basic_circuit(5, 80, 9);
        assert!(c
            .gates()
            .all(|g| g.kind().n_qubits() == 1 || g.kind() == GateKind::CX));
    }
}
