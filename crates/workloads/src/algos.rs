//! Textbook quantum algorithm circuits (the small-structure half of
//! Table 4): Bernstein-Vazirani, QFT, GHZ/cat states, counterfeit-coin,
//! and the compiled QPE instance used for factoring 21.

use svsim_ir::{Circuit, GateKind};
use svsim_types::SvResult;

/// Bernstein-Vazirani over `n` qubits (`n-1` data + 1 oracle ancilla),
/// recovering `secret` (must fit in `n-1` bits).
///
/// # Errors
/// Width errors.
pub fn bv(n: u32, secret: u64) -> SvResult<Circuit> {
    assert!(n >= 2, "bv needs a data register and an ancilla");
    assert!(secret < (1 << (n - 1)), "secret must fit in n-1 bits");
    let mut c = Circuit::with_cbits(n, n - 1);
    let anc = n - 1;
    // Ancilla in |->.
    c.apply(GateKind::X, &[anc], &[])?;
    c.apply(GateKind::H, &[anc], &[])?;
    for q in 0..n - 1 {
        c.apply(GateKind::H, &[q], &[])?;
    }
    // Oracle: f(x) = secret . x
    for q in 0..n - 1 {
        if (secret >> q) & 1 == 1 {
            c.apply(GateKind::CX, &[q, anc], &[])?;
        }
    }
    for q in 0..n - 1 {
        c.apply(GateKind::H, &[q], &[])?;
    }
    for q in 0..n - 1 {
        c.measure(q, q)?;
    }
    Ok(c)
}

/// Quantum Fourier transform on `n` qubits (with the final reversal swaps).
///
/// # Errors
/// Width errors.
pub fn qft(n: u32) -> SvResult<Circuit> {
    let mut c = Circuit::new(n);
    append_qft(&mut c, 0, n, false)?;
    Ok(c)
}

/// Append a QFT (or its inverse) on qubits `[base, base + width)`.
///
/// # Errors
/// Width errors.
pub fn append_qft(c: &mut Circuit, base: u32, width: u32, inverse: bool) -> SvResult<()> {
    if inverse {
        for i in 0..width / 2 {
            c.apply(GateKind::SWAP, &[base + i, base + width - 1 - i], &[])?;
        }
        for i in (0..width).rev() {
            for j in (i + 1..width).rev() {
                let angle = -std::f64::consts::PI / f64::from(1u32 << (j - i));
                c.apply(GateKind::CU1, &[base + j, base + i], &[angle])?;
            }
            c.apply(GateKind::H, &[base + i], &[])?;
        }
    } else {
        for i in 0..width {
            c.apply(GateKind::H, &[base + i], &[])?;
            for j in i + 1..width {
                let angle = std::f64::consts::PI / f64::from(1u32 << (j - i));
                c.apply(GateKind::CU1, &[base + j, base + i], &[angle])?;
            }
        }
        for i in 0..width / 2 {
            c.apply(GateKind::SWAP, &[base + i, base + width - 1 - i], &[])?;
        }
    }
    Ok(())
}

/// GHZ state over `n` qubits: `(|0...0> + |1...1>)/sqrt(2)`.
///
/// # Errors
/// Width errors.
pub fn ghz(n: u32) -> SvResult<Circuit> {
    let mut c = Circuit::new(n);
    c.apply(GateKind::H, &[0], &[])?;
    for q in 0..n - 1 {
        c.apply(GateKind::CX, &[q, q + 1], &[])?;
    }
    Ok(c)
}

/// Cat state: coherent superposition with opposite phase,
/// `(|0...0> - |1...1>)/sqrt(2)`.
///
/// # Errors
/// Width errors.
pub fn cat_state(n: u32) -> SvResult<Circuit> {
    let mut c = Circuit::new(n);
    c.apply(GateKind::X, &[0], &[])?;
    c.apply(GateKind::H, &[0], &[])?; // |-> on the seed qubit
    for q in 0..n - 1 {
        c.apply(GateKind::CX, &[q, q + 1], &[])?;
    }
    Ok(c)
}

/// Counterfeit-coin finding over `n` qubits: `n-1` coins + 1 balance
/// ancilla (the QASMBench `cc` structure: one H and one CX per coin).
///
/// # Errors
/// Width errors.
pub fn counterfeit_coin(n: u32) -> SvResult<Circuit> {
    assert!(n >= 2);
    let mut c = Circuit::with_cbits(n, n);
    let balance = n - 1;
    for q in 0..n - 1 {
        c.apply(GateKind::H, &[q], &[])?;
    }
    for q in 0..n - 1 {
        c.apply(GateKind::CX, &[q, balance], &[])?;
    }
    c.apply(GateKind::H, &[balance], &[])?;
    c.measure(balance, balance)?;
    Ok(c)
}

/// Compiled quantum phase estimation for factoring 21 (order finding of
/// `a = 2 mod 21`, order `r = 6`).
///
/// `n` qubits: `n-1` counting + 1 work qubit. The controlled modular
/// exponentiation is replaced by its eigenphase action on a prepared
/// eigenstate (phase `s/6`), the standard compiled-QPE shortcut also used
/// by the QASMBench `qf21` instance — the counting register statistics are
/// exactly those of full order finding on the chosen eigenstate.
///
/// # Errors
/// Width errors.
pub fn qf21(n: u32) -> SvResult<Circuit> {
    assert!(n >= 3);
    let counting = n - 1;
    let work = n - 1; // index of the work qubit
    let mut c = Circuit::with_cbits(n, counting);
    // Eigenstate |u_1> of the order-6 multiplication operator: phase 1/6.
    c.apply(GateKind::X, &[work], &[])?;
    for q in 0..counting {
        c.apply(GateKind::H, &[q], &[])?;
    }
    // Controlled-U^{2^k}: kick back phase 2*pi*2^k/6. Our QFT uses the
    // MSB-first convention (qubit 0 is the most significant counting bit),
    // so qubit j carries significance k = counting - 1 - j.
    for j in 0..counting {
        let k = counting - 1 - j;
        // 2^k mod 6, computed in modular arithmetic to avoid overflow.
        let pow_mod = {
            let mut v = 1u64;
            for _ in 0..k {
                v = (v * 2) % 6;
            }
            v
        };
        let phase = 2.0 * std::f64::consts::PI * pow_mod as f64 / 6.0;
        c.apply(GateKind::CU1, &[j, work], &[phase])?;
    }
    append_qft(&mut c, 0, counting, true)?;
    // Qubit 0 is the estimate's MSB: store it in the top classical bit.
    for q in 0..counting {
        c.measure(q, counting - 1 - q)?;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_core::{SimConfig, Simulator};

    #[test]
    fn bv_recovers_secret() {
        for secret in [0b101101u64, 0, 0b11111] {
            let c = bv(7, secret).unwrap();
            let mut sim = Simulator::new(7, SimConfig::single_device().with_seed(1)).unwrap();
            let summary = sim.run(&c).unwrap();
            assert_eq!(summary.cbits, secret, "BV must output the secret");
        }
    }

    #[test]
    fn bv_rejects_oversized_secret() {
        let r = std::panic::catch_unwind(|| bv(3, 0b100));
        assert!(r.is_err());
    }

    #[test]
    fn qft_of_zero_is_uniform() {
        let c = qft(4).unwrap();
        let mut sim = Simulator::new(4, SimConfig::single_device()).unwrap();
        sim.run(&c).unwrap();
        for p in sim.probabilities() {
            assert!((p - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn qft_inverse_roundtrip() {
        let mut c = Circuit::new(5);
        // Some arbitrary state prep.
        c.apply(GateKind::H, &[0], &[]).unwrap();
        c.apply(GateKind::CX, &[0, 3], &[]).unwrap();
        c.apply(GateKind::T, &[3], &[]).unwrap();
        let prep = c.clone();
        append_qft(&mut c, 0, 5, false).unwrap();
        append_qft(&mut c, 0, 5, true).unwrap();
        let mut sim1 = Simulator::new(5, SimConfig::single_device()).unwrap();
        sim1.run(&c).unwrap();
        let mut sim2 = Simulator::new(5, SimConfig::single_device()).unwrap();
        sim2.run(&prep).unwrap();
        assert!(sim1.state().max_diff(sim2.state()) < 1e-10);
    }

    #[test]
    fn ghz_and_cat_probabilities() {
        for (builder, name) in [
            (ghz as fn(u32) -> SvResult<Circuit>, "ghz"),
            (cat_state, "cat"),
        ] {
            let c = builder(6).unwrap();
            let mut sim = Simulator::new(6, SimConfig::single_device()).unwrap();
            sim.run(&c).unwrap();
            let p = sim.probabilities();
            assert!((p[0] - 0.5).abs() < 1e-12, "{name}");
            assert!((p[63] - 0.5).abs() < 1e-12, "{name}");
        }
        // Cat has the opposite relative phase: <GHZ|CAT> = 0.
        let mut a = Simulator::new(6, SimConfig::single_device()).unwrap();
        a.run(&ghz(6).unwrap()).unwrap();
        let mut b = Simulator::new(6, SimConfig::single_device()).unwrap();
        b.run(&cat_state(6).unwrap()).unwrap();
        assert!(a.state().fidelity(b.state()) < 1e-12);
    }

    #[test]
    fn cc_structure_matches_qasmbench() {
        // cc_n12: 22 gates, 11 CX in the paper's Table 4 (+1 final H here).
        let c = counterfeit_coin(12).unwrap();
        let s = c.stats();
        assert_eq!(s.qubits, 12);
        assert_eq!(s.cx, 11);
        assert!(s.gates >= 22);
    }

    #[test]
    fn qf21_peaks_at_multiples_of_one_sixth() {
        // Small instance: 6 counting bits + 1 work qubit.
        let c = qf21(7).unwrap();
        let mut sim = Simulator::new(7, SimConfig::single_device().with_seed(2)).unwrap();
        // Strip the measurements so we can look at the counting register
        // distribution directly.
        let mut unmeasured = Circuit::new(7);
        for op in c.ops() {
            if let svsim_ir::Op::Gate(g) = op {
                unmeasured.push_gate(*g).unwrap();
            }
        }
        sim.run(&unmeasured).unwrap();
        let probs = sim.probabilities();
        // Marginal over the work qubit: counting value k has probability
        // concentrated near k ~ 64/6 = 10.67 and its multiples.
        let mut counting = vec![0.0; 64];
        for (idx, p) in probs.iter().enumerate() {
            // Qubit j is bit (5 - j) of the estimate (MSB-first convention).
            let mut k = 0usize;
            for j in 0..6 {
                k |= ((idx >> j) & 1) << (5 - j);
            }
            counting[k] += p;
        }
        let best = (0..64)
            .max_by(|&a, &b| counting[a].total_cmp(&counting[b]))
            .unwrap();
        let nearest_multiple = [0u32, 11, 21, 32, 43, 53, 64]
            .iter()
            .map(|&m| (i64::from(m) - best as i64).unsigned_abs())
            .min()
            .unwrap();
        assert!(
            nearest_multiple <= 1,
            "QPE peak {best} should sit near a multiple of 64/6"
        );
    }
}

/// Continued-fraction expansion: recover the order `r` from a QPE estimate
/// `k / 2^bits ~ s / r` (the classical post-processing step of Shor's
/// algorithm that consumes the qf21 measurement).
///
/// Returns the smallest denominator `r <= max_denominator` whose convergent
/// approximates `k / 2^bits` within `1 / 2^(bits+1)`.
#[must_use]
pub fn order_from_phase(k: u64, bits: u32, max_denominator: u64) -> Option<u64> {
    if k == 0 {
        return None;
    }
    let target = k as f64 / (1u64 << bits) as f64;
    let tolerance = 1.0 / (1u64 << (bits + 1)) as f64;
    // Continued-fraction convergents of k / 2^bits.
    let (mut num, mut den) = (k, 1u64 << bits);
    let (mut h0, mut h1) = (0u64, 1u64); // numerators
    let (mut k0, mut k1) = (1u64, 0u64); // denominators
    while den != 0 {
        let a = num / den;
        let h2 = a.checked_mul(h1).and_then(|x| x.checked_add(h0))?;
        let k2 = a.checked_mul(k1).and_then(|x| x.checked_add(k0))?;
        if k2 > max_denominator {
            break;
        }
        if k2 > 0 && (h2 as f64 / k2 as f64 - target).abs() <= tolerance {
            return Some(k2);
        }
        (h0, h1) = (h1, h2);
        (k0, k1) = (k1, k2);
        (num, den) = (den, num % den);
    }
    None
}

/// Classical completion of Shor's algorithm for N = 21, a = 2: turn an
/// order candidate into a nontrivial factor pair.
#[must_use]
pub fn factors_of_21_from_order(r: u64) -> Option<(u64, u64)> {
    if r == 0 || r % 2 == 1 {
        return None;
    }
    // a^{r/2} mod 21 with a = 2.
    let mut half_power = 1u64;
    for _ in 0..r / 2 {
        half_power = (half_power * 2) % 21;
    }
    if half_power == 20 {
        return None; // a^{r/2} = -1 mod N: trivial
    }
    let gcd = |mut a: u64, mut b: u64| {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    };
    let f1 = gcd(half_power + 1, 21);
    let f2 = gcd(half_power.wrapping_sub(1).max(1), 21);
    for f in [f1, f2] {
        if f != 1 && f != 21 {
            return Some((f, 21 / f));
        }
    }
    None
}

#[cfg(test)]
mod factor_tests {
    use super::*;
    use svsim_core::{SimConfig, Simulator};

    #[test]
    fn continued_fractions_recover_small_orders() {
        // k/2^10 near s/6 must recover 6.
        assert_eq!(order_from_phase(171, 10, 20), Some(6)); // 171/1024 ~ 1/6
        assert_eq!(order_from_phase(341, 10, 20), Some(3)); // ~ 1/3
        assert_eq!(order_from_phase(512, 10, 20), Some(2)); // = 1/2
        assert_eq!(order_from_phase(0, 10, 20), None);
    }

    #[test]
    fn order_six_factors_twenty_one() {
        assert_eq!(factors_of_21_from_order(6), Some((3, 7)));
        assert_eq!(factors_of_21_from_order(3), None, "odd order is useless");
        assert_eq!(factors_of_21_from_order(0), None);
    }

    #[test]
    fn qf21_end_to_end_factors_21() {
        // Run the full pipeline: QPE circuit, measured estimate, continued
        // fractions, factor extraction — over several shots at least one
        // must yield the factors (s coprime to 6).
        let c = qf21(11).unwrap(); // 10 counting bits + work
        let mut sim = Simulator::new(11, SimConfig::single_device().with_seed(21)).unwrap();
        let hist = sim.run_shots(&c, 24).unwrap();
        let mut factored = false;
        for &k in hist.keys() {
            if let Some(r) = order_from_phase(k, 10, 20) {
                // The prepared eigenstate has phase 1/6; accept any r that
                // divides into a working factor pair (r = 6 or a multiple
                // pattern that still factors).
                if factors_of_21_from_order(r) == Some((3, 7)) {
                    factored = true;
                }
            }
        }
        assert!(factored, "no shot factored 21; histogram {hist:?}");
    }
}

/// Deutsch-Jozsa over `n` qubits (`n-1` data + 1 ancilla): decides whether
/// the oracle is constant or balanced in one query.
///
/// `balanced_mask = 0` encodes a constant oracle; otherwise the oracle is
/// the balanced function `f(x) = parity(x & mask)`.
///
/// # Errors
/// Width errors.
pub fn deutsch_jozsa(n: u32, balanced_mask: u64) -> SvResult<Circuit> {
    assert!(n >= 2);
    assert!(balanced_mask < (1 << (n - 1)));
    let anc = n - 1;
    let mut c = Circuit::with_cbits(n, n - 1);
    c.apply(GateKind::X, &[anc], &[])?;
    for q in 0..n {
        c.apply(GateKind::H, &[q], &[])?;
    }
    for q in 0..n - 1 {
        if (balanced_mask >> q) & 1 == 1 {
            c.apply(GateKind::CX, &[q, anc], &[])?;
        }
    }
    for q in 0..n - 1 {
        c.apply(GateKind::H, &[q], &[])?;
    }
    for q in 0..n - 1 {
        c.measure(q, q)?;
    }
    Ok(c)
}

#[cfg(test)]
mod dj_tests {
    use super::*;
    use svsim_core::{SimConfig, Simulator};

    #[test]
    fn constant_oracle_reads_all_zero() {
        let c = deutsch_jozsa(6, 0).unwrap();
        let mut sim = Simulator::new(6, SimConfig::single_device().with_seed(1)).unwrap();
        assert_eq!(sim.run(&c).unwrap().cbits, 0);
    }

    #[test]
    fn balanced_oracle_reads_nonzero() {
        for mask in [0b1u64, 0b101, 0b11111] {
            let c = deutsch_jozsa(6, mask).unwrap();
            let mut sim = Simulator::new(6, SimConfig::single_device().with_seed(1)).unwrap();
            // For the parity oracle, the data register reads exactly `mask`.
            assert_eq!(sim.run(&c).unwrap().cbits, mask);
        }
    }
}
