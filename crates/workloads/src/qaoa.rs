//! QAOA circuits for MaxCut (the third VQA family the paper's
//! introduction motivates, alongside VQE and QNN).
//!
//! Layer structure: the cost unitary `exp(-i gamma C)` is a product of
//! `RZZ` rotations (one per graph edge — a native diagonal kernel in
//! SV-Sim); the mixer `exp(-i beta B)` is a layer of `RX` rotations.

use svsim_ir::{Circuit, GateKind};
use svsim_types::{SvResult, SvRng};

/// An undirected graph as an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n_vertices: u32,
    edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Build from an edge list (vertices must be `< n_vertices`).
    ///
    /// # Panics
    /// On out-of-range or self-loop edges.
    #[must_use]
    pub fn new(n_vertices: u32, edges: &[(u32, u32)]) -> Self {
        for &(a, b) in edges {
            assert!(a < n_vertices && b < n_vertices, "edge out of range");
            assert_ne!(a, b, "self loops are not allowed");
        }
        Self {
            n_vertices,
            edges: edges.to_vec(),
        }
    }

    /// Erdős–Rényi random graph with edge probability `p`.
    #[must_use]
    pub fn random(n_vertices: u32, p: f64, seed: u64) -> Self {
        let mut rng = SvRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for a in 0..n_vertices {
            for b in a + 1..n_vertices {
                if rng.bernoulli(p) {
                    edges.push((a, b));
                }
            }
        }
        Self { n_vertices, edges }
    }

    /// A cycle graph (ring) — MaxCut is `n` for even `n`.
    #[must_use]
    pub fn cycle(n_vertices: u32) -> Self {
        let edges: Vec<(u32, u32)> = (0..n_vertices).map(|v| (v, (v + 1) % n_vertices)).collect();
        Self { n_vertices, edges }
    }

    /// Vertex count.
    #[must_use]
    pub fn n_vertices(&self) -> u32 {
        self.n_vertices
    }

    /// Edge list.
    #[must_use]
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Cut value of a bitstring assignment.
    #[must_use]
    pub fn cut_value(&self, assignment: u64) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| ((assignment >> a) ^ (assignment >> b)) & 1 == 1)
            .count()
    }

    /// Exact MaxCut by exhaustive search (tests / small graphs only).
    #[must_use]
    pub fn max_cut_brute_force(&self) -> usize {
        (0..(1u64 << self.n_vertices))
            .map(|x| self.cut_value(x))
            .max()
            .unwrap_or(0)
    }
}

/// Build a `p`-layer QAOA circuit for MaxCut on `graph` with parameters
/// `gammas` (cost angles) and `betas` (mixer angles).
///
/// # Errors
/// Parameter-count mismatch or width errors.
pub fn qaoa_maxcut(graph: &Graph, gammas: &[f64], betas: &[f64]) -> SvResult<Circuit> {
    if gammas.len() != betas.len() {
        return Err(svsim_types::SvError::InvalidConfig(
            "gammas and betas must have equal length".into(),
        ));
    }
    let n = graph.n_vertices();
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.apply(GateKind::H, &[q], &[])?;
    }
    for (&gamma, &beta) in gammas.iter().zip(betas) {
        // Cost layer: exp(-i gamma/2 * Z_a Z_b) per edge (the 1/2 is a
        // harmless reparameterization of gamma).
        for &(a, b) in graph.edges() {
            c.apply(GateKind::RZZ, &[a, b], &[gamma])?;
        }
        // Mixer layer.
        for q in 0..n {
            c.apply(GateKind::RX, &[q], &[2.0 * beta])?;
        }
    }
    Ok(c)
}

/// Expected cut value of a QAOA output distribution.
#[must_use]
pub fn expected_cut(graph: &Graph, probabilities: &[f64]) -> f64 {
    probabilities
        .iter()
        .enumerate()
        .map(|(x, p)| p * graph.cut_value(x as u64) as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_core::{SimConfig, Simulator};

    #[test]
    fn graph_construction_and_cut_values() {
        let g = Graph::cycle(4);
        assert_eq!(g.edges().len(), 4);
        // Alternating assignment 0101 cuts every edge.
        assert_eq!(g.cut_value(0b0101), 4);
        assert_eq!(g.cut_value(0b0000), 0);
        assert_eq!(g.max_cut_brute_force(), 4);
    }

    #[test]
    fn random_graph_is_deterministic() {
        let a = Graph::random(8, 0.4, 3);
        let b = Graph::random(8, 0.4, 3);
        assert_eq!(a, b);
        assert!(!a.edges().is_empty());
    }

    #[test]
    fn zero_parameters_give_uniform_cut_average() {
        // gamma = beta = 0: the state stays uniform; expected cut is
        // |E| / 2 exactly.
        let g = Graph::cycle(6);
        let c = qaoa_maxcut(&g, &[0.0], &[0.0]).unwrap();
        let mut sim = Simulator::new(6, SimConfig::single_device()).unwrap();
        sim.run(&c).unwrap();
        let e = expected_cut(&g, &sim.probabilities());
        assert!((e - 3.0).abs() < 1e-10, "expected |E|/2 = 3, got {e}");
    }

    #[test]
    fn one_layer_beats_random_guessing() {
        // A coarse grid over (gamma, beta) must contain a point lifting the
        // expected cut well above the |E|/2 = 3 random baseline; the p=1
        // ring optimum is 4.5 (ratio 3/4).
        let g = Graph::cycle(6);
        let mut best = 0.0f64;
        for gi in 1..8 {
            for bi in 1..8 {
                let gamma = gi as f64 * 0.35;
                let beta = bi as f64 * 0.2;
                let c = qaoa_maxcut(&g, &[gamma], &[beta]).unwrap();
                let mut sim = Simulator::new(6, SimConfig::single_device()).unwrap();
                sim.run(&c).unwrap();
                best = best.max(expected_cut(&g, &sim.probabilities()));
            }
        }
        assert!(
            best > 4.0,
            "one QAOA layer should reach near its 4.5 ring optimum, got {best}"
        );
    }

    #[test]
    fn parameter_validation() {
        let g = Graph::cycle(4);
        assert!(qaoa_maxcut(&g, &[0.1, 0.2], &[0.1]).is_err());
    }
}
