//! `seca`: Shor's error-correction code applied to teleportation
//! (the Table 4 `seca_n11` routine).
//!
//! Structure: a payload state is encoded into the 9-qubit Shor code, a
//! correctable error is injected, the code is decoded (majority-corrected),
//! and the recovered payload is teleported onto a fresh qubit through a
//! Bell pair with coherent (CX/CZ) corrections — 9 + 2 = 11 qubits.

use svsim_ir::{Circuit, GateKind};
use svsim_types::SvResult;

/// Encode qubit 0 into the Shor 9-qubit code over qubits `0..9`.
///
/// # Errors
/// Width errors.
pub fn append_shor_encode(c: &mut Circuit) -> SvResult<()> {
    // Phase-flip layer: qubit 0 -> blocks {0,3,6}.
    c.apply(GateKind::CX, &[0, 3], &[])?;
    c.apply(GateKind::CX, &[0, 6], &[])?;
    for b in [0u32, 3, 6] {
        c.apply(GateKind::H, &[b], &[])?;
        // Bit-flip layer inside each block.
        c.apply(GateKind::CX, &[b, b + 1], &[])?;
        c.apply(GateKind::CX, &[b, b + 2], &[])?;
    }
    Ok(())
}

/// Decode the Shor code (inverse of encode with majority-vote correction
/// folded in as Toffoli gates).
///
/// # Errors
/// Width errors.
pub fn append_shor_decode(c: &mut Circuit) -> SvResult<()> {
    for b in [0u32, 3, 6] {
        c.apply(GateKind::CX, &[b, b + 1], &[])?;
        c.apply(GateKind::CX, &[b, b + 2], &[])?;
        // Majority correction within the block.
        c.apply(GateKind::CCX, &[b + 1, b + 2, b], &[])?;
        c.apply(GateKind::H, &[b], &[])?;
    }
    c.apply(GateKind::CX, &[0, 3], &[])?;
    c.apply(GateKind::CX, &[0, 6], &[])?;
    // Majority correction across blocks.
    c.apply(GateKind::CCX, &[3, 6, 0], &[])?;
    Ok(())
}

/// The kind of error injected into the encoded payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedError {
    /// No error.
    None,
    /// Bit flip on a code qubit.
    X(u32),
    /// Phase flip on a code qubit.
    Z(u32),
    /// Both.
    Y(u32),
}

/// Build the full `seca` routine: encode, inject `error`, decode/correct,
/// then teleport the payload from qubit 0 to qubit 10 with coherent
/// corrections.
///
/// The payload is prepared as `RY(theta)|0>` so the test can verify an
/// arbitrary superposition survives.
///
/// # Errors
/// Width errors.
pub fn seca(theta: f64, error: InjectedError) -> SvResult<Circuit> {
    let mut c = Circuit::with_cbits(11, 2);
    // Payload.
    c.apply(GateKind::RY, &[0], &[theta])?;
    append_shor_encode(&mut c)?;
    match error {
        InjectedError::None => {}
        InjectedError::X(q) => c.apply(GateKind::X, &[q], &[])?,
        InjectedError::Z(q) => c.apply(GateKind::Z, &[q], &[])?,
        InjectedError::Y(q) => c.apply(GateKind::Y, &[q], &[])?,
    }
    append_shor_decode(&mut c)?;
    // Teleport qubit 0 -> qubit 10 via Bell pair (9, 10), with the
    // measurement-free coherent-correction formulation used by deferred-
    // measurement benchmarks.
    c.apply(GateKind::H, &[9], &[])?;
    c.apply(GateKind::CX, &[9, 10], &[])?;
    c.apply(GateKind::CX, &[0, 9], &[])?;
    c.apply(GateKind::H, &[0], &[])?;
    c.apply(GateKind::CX, &[9, 10], &[])?;
    c.apply(GateKind::CZ, &[0, 10], &[])?;
    Ok(c)
}

/// The Table 4 `seca_n11` instance: an equal-superposition payload with a
/// bit-flip error on code qubit 4.
///
/// # Errors
/// Width errors.
pub fn seca_n11() -> SvResult<Circuit> {
    seca(std::f64::consts::FRAC_PI_3, InjectedError::X(4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_core::{measure, SimConfig, Simulator};
    use svsim_ir::PauliString;

    /// After seca, qubit 10 must hold RY(theta)|0>, whatever error was
    /// injected: <Z_10> = cos(theta).
    fn check_recovered(theta: f64, error: InjectedError) {
        let c = seca(theta, error).unwrap();
        let mut sim = Simulator::new(11, SimConfig::single_device().with_seed(3)).unwrap();
        sim.run(&c).unwrap();
        let z10 = PauliString::new(&[(svsim_ir::Pauli::Z, 10)]).unwrap();
        let expect = theta.cos();
        let got = sim.expval_pauli(&z10);
        assert!(
            (got - expect).abs() < 1e-9,
            "{error:?}: <Z10> = {got}, expected {expect}"
        );
        // And <X_10> = sin(theta) pins the phase too.
        let x10 = PauliString::new(&[(svsim_ir::Pauli::X, 10)]).unwrap();
        let got_x = sim.expval_pauli(&x10);
        assert!(
            (got_x - theta.sin()).abs() < 1e-9,
            "{error:?}: <X10> = {got_x}, expected {}",
            theta.sin()
        );
    }

    #[test]
    fn no_error_teleports() {
        check_recovered(0.7, InjectedError::None);
    }

    #[test]
    fn corrects_any_single_x_error() {
        for q in 0..9 {
            check_recovered(0.7, InjectedError::X(q));
        }
    }

    #[test]
    fn corrects_any_single_z_error() {
        for q in 0..9 {
            check_recovered(1.1, InjectedError::Z(q));
        }
    }

    #[test]
    fn corrects_y_errors() {
        for q in [0, 4, 8] {
            check_recovered(0.4, InjectedError::Y(q));
        }
    }

    #[test]
    fn footprint_matches_table4() {
        let c = seca_n11().unwrap();
        assert_eq!(c.n_qubits(), 11);
        let mut sim = Simulator::new(11, SimConfig::single_device()).unwrap();
        sim.run(&c).unwrap();
        let p1 = measure::prob_one(sim.state(), 10);
        // RY(pi/3) payload: P(1) = sin^2(pi/6) = 0.25.
        assert!((p1 - 0.25).abs() < 1e-9);
    }
}
