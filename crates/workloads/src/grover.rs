//! Grover-style workloads: Boolean satisfiability (`sat`) and square-root
//! finding via amplitude amplification (`square_root`).

use crate::arith::{append_multiplier, MultiplierLayout};
use svsim_ir::decompose::mcx;
use svsim_ir::{Circuit, Gate, GateKind};
use svsim_types::SvResult;

/// A CNF clause: literals as (variable index, negated?).
pub type Clause = Vec<(u32, bool)>;

fn push_mcx(c: &mut Circuit, controls: &[u32], target: u32) -> SvResult<()> {
    let mut gates: Vec<Gate> = Vec::new();
    match controls.len() {
        0 => gates.push(Gate::new(GateKind::X, &[target], &[])?),
        1 => gates.push(Gate::new(GateKind::CX, &[controls[0], target], &[])?),
        2 => gates.push(Gate::new(
            GateKind::CCX,
            &[controls[0], controls[1], target],
            &[],
        )?),
        3 => gates.push(Gate::new(
            GateKind::C3X,
            &[controls[0], controls[1], controls[2], target],
            &[],
        )?),
        4 => gates.push(Gate::new(
            GateKind::C4X,
            &[controls[0], controls[1], controls[2], controls[3], target],
            &[],
        )?),
        _ => mcx(&mut gates, controls, target),
    }
    for g in gates {
        c.push_gate(g)?;
    }
    Ok(())
}

/// Grover diffusion operator over the first `n_vars` qubits.
///
/// # Errors
/// Width errors.
pub fn append_diffusion(c: &mut Circuit, n_vars: u32) -> SvResult<()> {
    for q in 0..n_vars {
        c.apply(GateKind::H, &[q], &[])?;
        c.apply(GateKind::X, &[q], &[])?;
    }
    // Multi-controlled Z on the all-ones state.
    c.apply(GateKind::H, &[n_vars - 1], &[])?;
    let controls: Vec<u32> = (0..n_vars - 1).collect();
    push_mcx(c, &controls, n_vars - 1)?;
    c.apply(GateKind::H, &[n_vars - 1], &[])?;
    for q in 0..n_vars {
        c.apply(GateKind::X, &[q], &[])?;
        c.apply(GateKind::H, &[q], &[])?;
    }
    Ok(())
}

/// Grover search for satisfying assignments of a CNF formula.
///
/// Layout: variables `[0, n_vars)`, one ancilla per clause, one phase
/// output qubit; total `n_vars + clauses.len() + 1` qubits.
///
/// The oracle computes each clause into its ancilla (a clause is violated
/// iff all its literals are false — detected by a multi-controlled X on the
/// negated literals), ANDs the clause bits into the phase qubit (prepared
/// in `|->`), and uncomputes.
///
/// # Errors
/// Width errors.
pub fn sat(n_vars: u32, clauses: &[Clause], iterations: u32) -> SvResult<Circuit> {
    let n = n_vars + clauses.len() as u32 + 1;
    let out = n - 1;
    let mut c = Circuit::with_cbits(n, n_vars);
    for q in 0..n_vars {
        c.apply(GateKind::H, &[q], &[])?;
    }
    // Phase qubit in |->.
    c.apply(GateKind::X, &[out], &[])?;
    c.apply(GateKind::H, &[out], &[])?;
    for _ in 0..iterations {
        append_sat_oracle(&mut c, n_vars, clauses, out, false)?;
        // Phase kickback: flip `out` iff all clauses hold.
        let clause_bits: Vec<u32> = (n_vars..n_vars + clauses.len() as u32).collect();
        push_mcx(&mut c, &clause_bits, out)?;
        append_sat_oracle(&mut c, n_vars, clauses, out, true)?;
        append_diffusion(&mut c, n_vars)?;
    }
    for q in 0..n_vars {
        c.measure(q, q)?;
    }
    Ok(c)
}

/// Compute (or uncompute) clause truth values into the clause ancillas.
fn append_sat_oracle(
    c: &mut Circuit,
    n_vars: u32,
    clauses: &[Clause],
    _out: u32,
    _uncompute: bool,
) -> SvResult<()> {
    for (k, clause) in clauses.iter().enumerate() {
        let anc = n_vars + k as u32;
        // Clause ancilla starts 0; set it to 1 (true), then flip to 0 when
        // every literal is false.
        c.apply(GateKind::X, &[anc], &[])?;
        // A literal (v, false) is false when v = 0: control on NOT v.
        for &(v, negated) in clause {
            if !negated {
                c.apply(GateKind::X, &[v], &[])?;
            }
        }
        let controls: Vec<u32> = clause.iter().map(|&(v, _)| v).collect();
        push_mcx(c, &controls, anc)?;
        for &(v, negated) in clause {
            if !negated {
                c.apply(GateKind::X, &[v], &[])?;
            }
        }
    }
    Ok(())
}

/// The Table 4 `sat_n11` instance: 4 variables, 6 clauses, 1 phase qubit.
///
/// Formula: `(x0 | x1) & (!x0 | x2) & (x1 | !x2) & (!x1 | x3) & (x2 | !x3)
/// & (!x0 | !x3)` — satisfied by exactly three assignments.
///
/// # Errors
/// Width errors.
pub fn sat_n11() -> SvResult<Circuit> {
    let clauses: Vec<Clause> = vec![
        vec![(0, false), (1, false)],
        vec![(0, true), (2, false)],
        vec![(1, false), (2, true)],
        vec![(1, true), (3, false)],
        vec![(2, false), (3, true)],
        vec![(0, true), (3, true)],
    ];
    sat(4, &clauses, 1)
}

/// Square root via amplitude amplification: search `x` with `x*x == target`.
///
/// Layout: `x` (`w` bits), a copy register (`w` bits, CXed from `x` so the
/// multiplier sees two operands), the multiplier network (product `2w` bits
/// + `w + 1` ancillas), and a phase qubit.
///
/// # Errors
/// Width errors.
pub fn square_root(w: u32, target: u64, iterations: u32) -> SvResult<Circuit> {
    // Multiplier over (x, copy): layout from base 0 with wa = wb = w.
    let l = MultiplierLayout::new(w, w);
    let out = l.total; // phase qubit after the multiplier block
    let n = l.total + 1;
    let mut c = Circuit::with_cbits(n, w);
    for q in 0..w {
        c.apply(GateKind::H, &[l.a + q], &[])?;
    }
    c.apply(GateKind::X, &[out], &[])?;
    c.apply(GateKind::H, &[out], &[])?;
    for _ in 0..iterations {
        // Copy x so the multiplier squares it.
        for q in 0..w {
            c.apply(GateKind::CX, &[l.a + q, l.b + q], &[])?;
        }
        append_multiplier(&mut c, &l)?;
        // Flip the phase qubit iff prod == target.
        let prod_bits: Vec<u32> = (0..2 * w).map(|k| l.prod + k).collect();
        for (k, &pq) in prod_bits.iter().enumerate() {
            if (target >> k) & 1 == 0 {
                c.apply(GateKind::X, &[pq], &[])?;
            }
        }
        push_mcx(&mut c, &prod_bits, out)?;
        for (k, &pq) in prod_bits.iter().enumerate() {
            if (target >> k) & 1 == 0 {
                c.apply(GateKind::X, &[pq], &[])?;
            }
        }
        // Uncompute the square and the copy.
        let inverse_mult = {
            let mut tmp = Circuit::new(n);
            append_multiplier(&mut tmp, &l)?;
            tmp.inverse()?
        };
        c.extend(&inverse_mult)?;
        for q in 0..w {
            c.apply(GateKind::CX, &[l.a + q, l.b + q], &[])?;
        }
        append_diffusion(&mut c, w)?;
    }
    for q in 0..w {
        c.measure(l.a + q, q)?;
    }
    Ok(c)
}

/// The Table 4 `square_root_n18` footprint: 3-bit argument (18 qubits),
/// searching for `sqrt(25) = 5`.
///
/// # Errors
/// Width errors.
pub fn square_root_n18() -> SvResult<Circuit> {
    // MultiplierLayout(3,3).total = 16, plus phase qubit = 17... pad to the
    // paper's 18 with the classical-width choice; see suite.rs for the
    // registry entry. Two Grover iterations (optimal for 1 of 8 states).
    square_root(3, 25, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_core::{measure, SimConfig, Simulator};

    fn satisfying(_n_vars: u32, clauses: &[Clause], x: u64) -> bool {
        clauses
            .iter()
            .all(|clause| clause.iter().any(|&(v, neg)| ((x >> v) & 1 == 1) != neg))
    }

    #[test]
    fn sat_amplifies_solutions() {
        let clauses: Vec<Clause> = vec![
            vec![(0, false), (1, false)],
            vec![(0, true), (2, false)],
            vec![(1, false), (2, true)],
        ];
        let c = sat(3, &clauses, 1).unwrap();
        let mut unmeasured = Circuit::new(c.n_qubits());
        for op in c.ops() {
            if let svsim_ir::Op::Gate(g) = op {
                unmeasured.push_gate(*g).unwrap();
            }
        }
        let mut sim = Simulator::new(c.n_qubits(), SimConfig::single_device()).unwrap();
        sim.run(&unmeasured).unwrap();
        let probs = sim.probabilities();
        // Marginal over the variable register.
        let mut marg = [0.0; 8];
        for (idx, p) in probs.iter().enumerate() {
            marg[idx & 7] += p;
        }
        let sat_mass: f64 = (0..8u64)
            .filter(|&x| satisfying(3, &clauses, x))
            .map(|x| marg[x as usize])
            .sum();
        assert!(
            sat_mass > 0.8,
            "one Grover iteration should amplify solutions, got {sat_mass}"
        );
    }

    #[test]
    fn sat_n11_footprint() {
        let c = sat_n11().unwrap();
        assert_eq!(c.n_qubits(), 11);
        assert!(c.stats().gates > 50);
    }

    #[test]
    fn square_root_finds_root() {
        // 2-bit argument, target 9 -> x = 3. One iteration on 4 states.
        let c = square_root(2, 9, 1).unwrap();
        let mut unmeasured = Circuit::new(c.n_qubits());
        for op in c.ops() {
            if let svsim_ir::Op::Gate(g) = op {
                unmeasured.push_gate(*g).unwrap();
            }
        }
        let mut sim = Simulator::new(c.n_qubits(), SimConfig::single_device()).unwrap();
        sim.run(&unmeasured).unwrap();
        let probs = sim.probabilities();
        let mut marg = vec![0.0; 4];
        for (idx, p) in probs.iter().enumerate() {
            marg[idx & 3] += p;
        }
        let best = (0..4).max_by(|&a, &b| marg[a].total_cmp(&marg[b])).unwrap();
        assert_eq!(best, 3, "sqrt(9) = 3 must dominate, marginals {marg:?}");
        assert!(marg[3] > 0.9);
    }

    #[test]
    fn diffusion_preserves_uniform() {
        // Diffusion has the uniform state as its +1 eigenvector.
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.apply(GateKind::H, &[q], &[]).unwrap();
        }
        append_diffusion(&mut c, 3).unwrap();
        let mut sim = Simulator::new(3, SimConfig::single_device()).unwrap();
        sim.run(&c).unwrap();
        for p in sim.probabilities() {
            assert!((p - 0.125).abs() < 1e-10);
        }
        let _ = measure::prob_one(sim.state(), 0);
    }
}
