//! Variational quantum neural network circuits.
//!
//! Two generators live here:
//! - [`qnn_classifier`] — the 4-feature binary classifier of the paper's
//!   power-grid use case (§5, Figure 1 shape): angle-encoded data qubits,
//!   weight-parameterized controlled rotations, and a readout qubit whose
//!   `P(1)` is the predicted violation probability.
//! - [`dnn_layers`] — the Table 4 `dnn_n16` benchmark shape: alternating
//!   rotation layers and CX entangler rings.

use svsim_ir::{Circuit, GateKind};
use svsim_types::SvResult;

/// Number of trainable weights of [`qnn_classifier`] for `n_data` features
/// and `layers` variational layers.
#[must_use]
pub fn qnn_n_weights(n_data: u32, layers: u32) -> usize {
    // Per layer: RY + RZ per data qubit, one CRY per data qubit into the
    // readout, and one readout bias RY.
    (layers * (3 * n_data + 1)) as usize
}

/// Build the power-grid QNN classifier.
///
/// Layout: `n_data` feature qubits + 1 readout qubit (total `n_data + 1`).
/// Features are angle-encoded with `RY(pi * x_i)`; each variational layer
/// applies `RY(w) RZ(w')` per data qubit, entangles the data ring with CX,
/// and rotates the readout with a `CRY(w'')` from every data qubit — the
/// "dozens of controlled rotational gates" of the paper's trial circuits.
///
/// # Errors
/// Width errors or weight-count mismatch.
pub fn qnn_classifier(features: &[f64], weights: &[f64], layers: u32) -> SvResult<Circuit> {
    let n_data = features.len() as u32;
    assert!(n_data >= 2, "need at least two features");
    if weights.len() != qnn_n_weights(n_data, layers) {
        return Err(svsim_types::SvError::InvalidConfig(format!(
            "expected {} weights, got {}",
            qnn_n_weights(n_data, layers),
            weights.len()
        )));
    }
    let readout = n_data;
    let mut c = Circuit::with_cbits(n_data + 1, 1);
    // Angle encoding.
    for (q, &x) in features.iter().enumerate() {
        c.apply(GateKind::RY, &[q as u32], &[std::f64::consts::PI * x])?;
    }
    let mut w = weights.iter();
    let mut next = || *w.next().expect("length checked");
    for _ in 0..layers {
        for q in 0..n_data {
            c.apply(GateKind::RY, &[q], &[next()])?;
            c.apply(GateKind::RZ, &[q], &[next()])?;
        }
        for q in 0..n_data {
            c.apply(GateKind::CX, &[q, (q + 1) % n_data], &[])?;
        }
        for q in 0..n_data {
            c.apply(GateKind::CRY, &[q, readout], &[next()])?;
        }
        // Trainable readout bias.
        c.apply(GateKind::RY, &[readout], &[next()])?;
    }
    c.measure(readout, 0)?;
    Ok(c)
}

/// The Table 4 `dnn` benchmark shape over `n` qubits: `layers` blocks of
/// per-qubit `RY`+`RZ` rotations followed by a CX entangler ring.
///
/// `dnn_n16` in the registry uses `n = 16`, `layers = 24` to match the
/// paper's 384 CX gates.
///
/// # Errors
/// Width errors.
pub fn dnn_layers(n: u32, layers: u32, seed: u64) -> SvResult<Circuit> {
    let mut rng = svsim_types::SvRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.apply(GateKind::H, &[q], &[])?;
    }
    for _ in 0..layers {
        for q in 0..n {
            c.apply(GateKind::RY, &[q], &[rng.range_f64(-1.0, 1.0)])?;
            c.apply(GateKind::RZ, &[q], &[rng.range_f64(-1.0, 1.0)])?;
        }
        for q in 0..n {
            c.apply(GateKind::CX, &[q, (q + 1) % n], &[])?;
        }
    }
    for q in 0..n {
        c.apply(GateKind::U3, &[q], &[rng.range_f64(0.0, 1.0), 0.0, 0.0])?;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_core::{measure, SimConfig, Simulator};

    #[test]
    fn qnn_readout_probability_responds_to_weights() {
        let features = [0.2, 0.8, 0.5, 0.1];
        let zeros = vec![0.0; qnn_n_weights(4, 2)];
        let c0 = qnn_classifier(&features, &zeros, 2).unwrap();
        let mut sim = Simulator::new(5, SimConfig::single_device()).unwrap();
        // Drop the measurement to read the probability directly.
        let mut unmeasured = Circuit::new(5);
        for op in c0.ops() {
            if let svsim_ir::Op::Gate(g) = op {
                unmeasured.push_gate(*g).unwrap();
            }
        }
        sim.run(&unmeasured).unwrap();
        let p_zero_weights = measure::prob_one(sim.state(), 4);
        assert!(p_zero_weights.abs() < 1e-12, "no rotation into the readout");
        assert_eq!(qnn_n_weights(4, 2), 26);

        let mut ones = zeros;
        ones.fill(1.0);
        let c1 = qnn_classifier(&features, &ones, 2).unwrap();
        let mut unmeasured = Circuit::new(5);
        for op in c1.ops() {
            if let svsim_ir::Op::Gate(g) = op {
                unmeasured.push_gate(*g).unwrap();
            }
        }
        let mut sim = Simulator::new(5, SimConfig::single_device()).unwrap();
        sim.run(&unmeasured).unwrap();
        let p = measure::prob_one(sim.state(), 4);
        assert!(p > 1e-3, "weights must steer the readout, got {p}");
    }

    #[test]
    fn qnn_weight_count_validated() {
        assert!(qnn_classifier(&[0.1, 0.2], &[0.0; 6], 1).is_err());
        assert!(qnn_classifier(&[0.1, 0.2], &[0.0; 7], 1).is_ok());
    }

    #[test]
    fn dnn_n16_matches_paper_cx_count() {
        let c = dnn_layers(16, 24, 7).unwrap();
        let s = c.stats();
        assert_eq!(s.qubits, 16);
        assert_eq!(s.cx, 384, "Table 4 lists 384 CX for dnn_n16");
        assert!(s.gates > 1000);
    }

    #[test]
    fn dnn_is_deterministic_per_seed() {
        let a = dnn_layers(6, 3, 42).unwrap();
        let b = dnn_layers(6, 3, 42).unwrap();
        assert_eq!(a, b);
        let c = dnn_layers(6, 3, 43).unwrap();
        assert_ne!(a, c);
    }
}
