//! Additional QASMBench-family state-preparation and dynamics circuits:
//! W states and trotterized transverse-field Ising evolution.

use svsim_ir::{Circuit, GateKind};
use svsim_types::SvResult;

/// Prepare the `n`-qubit W state `(|10..0> + |010..0> + ... + |0..01>)/sqrt(n)`
/// with the cascade of controlled-RY rotations.
///
/// # Errors
/// Width errors.
pub fn w_state(n: u32) -> SvResult<Circuit> {
    assert!(n >= 1);
    let mut c = Circuit::new(n);
    c.apply(GateKind::X, &[0], &[])?;
    for i in 0..n - 1 {
        // Move amplitude sqrt(1/(n-i)) of the remaining excitation onward.
        let remaining = f64::from(n - i);
        let theta = 2.0 * (1.0 / remaining.sqrt()).acos();
        c.apply(GateKind::CRY, &[i, i + 1], &[theta])?;
        c.apply(GateKind::CX, &[i + 1, i], &[])?;
    }
    Ok(c)
}

/// Trotterized transverse-field Ising evolution
/// `exp(-i t (J sum Z_i Z_{i+1} + h sum X_i))` over a chain, first-order
/// Trotter with `steps` slices (the QASMBench `ising` circuit family).
///
/// # Errors
/// Width errors.
pub fn ising_trotter(
    n: u32,
    j_coupling: f64,
    h_field: f64,
    t: f64,
    steps: u32,
) -> SvResult<Circuit> {
    assert!(n >= 2 && steps >= 1);
    let dt = t / f64::from(steps);
    let mut c = Circuit::new(n);
    for _ in 0..steps {
        for q in 0..n - 1 {
            // exp(-i J dt Z Z) = RZZ(2 J dt).
            c.apply(GateKind::RZZ, &[q, q + 1], &[2.0 * j_coupling * dt])?;
        }
        for q in 0..n {
            // exp(-i h dt X) = RX(2 h dt).
            c.apply(GateKind::RX, &[q], &[2.0 * h_field * dt])?;
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim_core::{SimConfig, Simulator};
    use svsim_ir::PauliString;

    #[test]
    fn w_state_is_uniform_over_one_hot() {
        for n in [2u32, 3, 5, 8] {
            let c = w_state(n).unwrap();
            let mut sim = Simulator::new(n, SimConfig::single_device()).unwrap();
            sim.run(&c).unwrap();
            let probs = sim.probabilities();
            for (idx, p) in probs.iter().enumerate() {
                if (idx as u64).count_ones() == 1 {
                    assert!(
                        (p - 1.0 / f64::from(n)).abs() < 1e-10,
                        "n={n}: one-hot state {idx:#b} has p={p}"
                    );
                } else {
                    assert!(*p < 1e-12, "n={n}: non-one-hot state {idx:#b} populated");
                }
            }
        }
    }

    #[test]
    fn w_state_matches_on_distributed_backend() {
        let c = w_state(5).unwrap();
        let mut a = Simulator::new(5, SimConfig::single_device()).unwrap();
        a.run(&c).unwrap();
        let mut b = Simulator::new(5, SimConfig::scale_out(4)).unwrap();
        b.run(&c).unwrap();
        assert!(a.state().max_diff(b.state()) < 1e-12);
    }

    #[test]
    fn ising_conserves_energy_in_field_free_limit() {
        // With h = 0 the Hamiltonian is diagonal: <Z_i Z_{i+1}> is exactly
        // conserved from the initial |0...0> state.
        let c = ising_trotter(5, 1.0, 0.0, 1.3, 4).unwrap();
        let mut sim = Simulator::new(5, SimConfig::single_device()).unwrap();
        sim.run(&c).unwrap();
        let zz = PauliString::parse("ZZIII").unwrap();
        assert!((sim.expval_pauli(&zz) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ising_trotter_converges_with_step_count() {
        // Magnetization after evolution must converge as steps increase:
        // |m(64 steps) - m(32 steps)| << |m(2 steps) - m(32 steps)|.
        let n = 4u32;
        let magnetization = |steps: u32| {
            let c = ising_trotter(n, 1.0, 0.7, 0.8, steps).unwrap();
            let mut sim = Simulator::new(n, SimConfig::single_device()).unwrap();
            sim.run(&c).unwrap();
            (0..n)
                .map(|q| {
                    let mut label = vec!['I'; n as usize];
                    label[q as usize] = 'Z';
                    let s: String = label.into_iter().collect();
                    sim.expval_pauli(&PauliString::parse(&s).unwrap())
                })
                .sum::<f64>()
        };
        let coarse = magnetization(2);
        let mid = magnetization(32);
        let fine = magnetization(64);
        assert!(
            (fine - mid).abs() < 0.25 * (coarse - mid).abs().max(1e-3),
            "Trotter error must shrink: coarse {coarse}, mid {mid}, fine {fine}"
        );
        // The field actually rotates spins away from |0>.
        assert!(fine < f64::from(n) - 0.05);
    }

    #[test]
    fn ising_norm_preserved_at_depth() {
        let c = ising_trotter(6, 0.9, 1.1, 2.0, 20).unwrap();
        assert!(c.stats().gates > 200);
        let mut sim = Simulator::new(6, SimConfig::single_device()).unwrap();
        sim.run(&c).unwrap();
        assert!((sim.state().norm_sqr() - 1.0).abs() < 1e-9);
    }
}
