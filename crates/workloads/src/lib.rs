//! Benchmark workloads for the SV-Sim reproduction.
//!
//! From-scratch implementations of every quantum routine in the paper's
//! Table 4 (QASMBench instances), plus the variational workloads of §5:
//! the UCCSD-VQE ansatz (Figures 16-17) and the power-grid QNN, and random
//! circuits for differential testing.

pub mod algos;
pub mod arith;
pub mod grover;
pub mod qaoa;
pub mod qnn;
pub mod random;
pub mod seca;
pub mod states;
pub mod suite;
pub mod uccsd;

pub use suite::{large_suite, medium_suite, Category, WorkloadSpec};
pub use uccsd::{uccsd_gate_count, UccsdAnsatz};
