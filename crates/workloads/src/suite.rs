//! The Table 4 workload registry: every routine the paper evaluates, at the
//! paper's sizes, with the paper's reported statistics alongside for the
//! reproduction report.

use svsim_ir::Circuit;
use svsim_types::SvResult;

/// Workload size category (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// 11-15 qubits: single-device and scale-up evaluation.
    Medium,
    /// 16-23 qubits: scale-out evaluation.
    Large,
}

/// One registry entry.
pub struct WorkloadSpec {
    /// Table 4 routine name (with qubit suffix).
    pub name: &'static str,
    /// Short description from the paper.
    pub description: &'static str,
    /// Paper-reported qubit count.
    pub paper_qubits: u32,
    /// Paper-reported gate count.
    pub paper_gates: usize,
    /// Paper-reported CX count.
    pub paper_cx: usize,
    /// Category.
    pub category: Category,
    /// Generator.
    pub build: fn() -> SvResult<Circuit>,
}

impl WorkloadSpec {
    /// Build the circuit.
    ///
    /// # Errors
    /// Propagates generator failures (none in practice).
    pub fn circuit(&self) -> SvResult<Circuit> {
        (self.build)()
    }
}

fn seca_n11() -> SvResult<Circuit> {
    crate::seca::seca_n11()
}
fn sat_n11() -> SvResult<Circuit> {
    crate::grover::sat_n11()
}
fn cc_n12() -> SvResult<Circuit> {
    crate::algos::counterfeit_coin(12)
}
fn multiply_n13() -> SvResult<Circuit> {
    crate::arith::multiply_3x5()
}
fn bv_n14() -> SvResult<Circuit> {
    crate::algos::bv(14, 0b1011_0110_0101)
}
fn qf21_n15() -> SvResult<Circuit> {
    crate::algos::qf21(15)
}
fn qft_n15() -> SvResult<Circuit> {
    crate::algos::qft(15)
}
fn multiplier_n15() -> SvResult<Circuit> {
    // 2-bit x 4-bit Toffoli multiplier: 15 qubits.
    crate::arith::multiplier(2, 4, 3, 9)
}
fn dnn_n16() -> SvResult<Circuit> {
    crate::qnn::dnn_layers(16, 24, 0xD11)
}
fn bigadder_n18() -> SvResult<Circuit> {
    crate::arith::bigadder(8, 0b1011_0110, 0b0110_1011)
}
fn cc_n18() -> SvResult<Circuit> {
    crate::algos::counterfeit_coin(18)
}
fn square_root_n18() -> SvResult<Circuit> {
    crate::grover::square_root_n18()
}
fn bv_n19() -> SvResult<Circuit> {
    crate::algos::bv(19, 0b1011_0110_0101_1011)
}
fn qft_n20() -> SvResult<Circuit> {
    crate::algos::qft(20)
}
fn cat_n22() -> SvResult<Circuit> {
    crate::algos::cat_state(22)
}
fn ghz_n23() -> SvResult<Circuit> {
    crate::algos::ghz(23)
}

/// The 8 medium routines of Table 4.
#[must_use]
pub fn medium_suite() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "seca_n11",
            description: "Shor's error correction code for teleportation",
            paper_qubits: 11,
            paper_gates: 216,
            paper_cx: 84,
            category: Category::Medium,
            build: seca_n11,
        },
        WorkloadSpec {
            name: "sat_n11",
            description: "Boolean satisfiability problem",
            paper_qubits: 11,
            paper_gates: 679,
            paper_cx: 252,
            category: Category::Medium,
            build: sat_n11,
        },
        WorkloadSpec {
            name: "cc_n12",
            description: "Counterfeit-coin finding algorithm",
            paper_qubits: 12,
            paper_gates: 22,
            paper_cx: 11,
            category: Category::Medium,
            build: cc_n12,
        },
        WorkloadSpec {
            name: "multiply_n13",
            description: "Performing 3x5 in a quantum circuit",
            paper_qubits: 13,
            paper_gates: 98,
            paper_cx: 40,
            category: Category::Medium,
            build: multiply_n13,
        },
        WorkloadSpec {
            name: "bv_n14",
            description: "Bernstein-Vazirani algorithm",
            paper_qubits: 14,
            paper_gates: 41,
            paper_cx: 13,
            category: Category::Medium,
            build: bv_n14,
        },
        WorkloadSpec {
            name: "qf21_n15",
            description: "Quantum phase estimation to factor 21",
            paper_qubits: 15,
            paper_gates: 311,
            paper_cx: 115,
            category: Category::Medium,
            build: qf21_n15,
        },
        WorkloadSpec {
            name: "qft_n15",
            description: "Quantum Fourier transform",
            paper_qubits: 15,
            paper_gates: 540,
            paper_cx: 210,
            category: Category::Medium,
            build: qft_n15,
        },
        WorkloadSpec {
            name: "multiplier_n15",
            description: "Quantum multiplier",
            paper_qubits: 15,
            paper_gates: 574,
            paper_cx: 246,
            category: Category::Medium,
            build: multiplier_n15,
        },
    ]
}

/// The 8 large routines of Table 4.
#[must_use]
pub fn large_suite() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "dnn_n16",
            description: "quantum neural network sample",
            paper_qubits: 16,
            paper_gates: 2016,
            paper_cx: 384,
            category: Category::Large,
            build: dnn_n16,
        },
        WorkloadSpec {
            name: "bigadder_n18",
            description: "Quantum ripple-carry adder",
            paper_qubits: 18,
            paper_gates: 284,
            paper_cx: 130,
            category: Category::Large,
            build: bigadder_n18,
        },
        WorkloadSpec {
            name: "cc_n18",
            description: "Counterfeit-coin finding algorithm",
            paper_qubits: 18,
            paper_gates: 34,
            paper_cx: 17,
            category: Category::Large,
            build: cc_n18,
        },
        WorkloadSpec {
            name: "square_root_n18",
            description: "Get the square root via amplitude amplification",
            paper_qubits: 18,
            paper_gates: 2300,
            paper_cx: 898,
            category: Category::Large,
            build: square_root_n18,
        },
        WorkloadSpec {
            name: "bv_n19",
            description: "Bernstein-Vazirani algorithm",
            paper_qubits: 19,
            paper_gates: 56,
            paper_cx: 18,
            category: Category::Large,
            build: bv_n19,
        },
        WorkloadSpec {
            name: "qft_n20",
            description: "Quantum Fourier transform",
            paper_qubits: 20,
            paper_gates: 970,
            paper_cx: 380,
            category: Category::Large,
            build: qft_n20,
        },
        WorkloadSpec {
            name: "cat_state_n22",
            description: "Coherent superposition with opposite phase",
            paper_qubits: 22,
            paper_gates: 22,
            paper_cx: 21,
            category: Category::Large,
            build: cat_n22,
        },
        WorkloadSpec {
            name: "ghz_state_n23",
            description: "Greenberger-Horne-Zeilinger state",
            paper_qubits: 23,
            paper_gates: 23,
            paper_cx: 22,
            category: Category::Large,
            build: ghz_n23,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_build() {
        for spec in medium_suite().into_iter().chain(large_suite()) {
            let c = spec
                .circuit()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(c.stats().gates > 0, "{}", spec.name);
        }
    }

    #[test]
    fn qubit_counts_match_paper() {
        for spec in medium_suite().into_iter().chain(large_suite()) {
            let c = spec.circuit().unwrap();
            // square_root is the one genuinely layout-dependent footprint:
            // our multiplier layout gives 17 rather than the paper's 18.
            let tolerance = if spec.name == "square_root_n18" { 1 } else { 0 };
            assert!(
                (i64::from(c.n_qubits()) - i64::from(spec.paper_qubits)).unsigned_abs()
                    <= tolerance,
                "{}: built {} qubits, paper has {}",
                spec.name,
                c.n_qubits(),
                spec.paper_qubits
            );
        }
    }

    #[test]
    fn gate_counts_same_order_of_magnitude() {
        for spec in medium_suite().into_iter().chain(large_suite()) {
            let c = spec.circuit().unwrap();
            let got = c.stats().gates as f64;
            let paper = spec.paper_gates as f64;
            let ratio = (got / paper).max(paper / got);
            assert!(
                ratio < 10.0,
                "{}: built {} gates vs paper {} (ratio {ratio:.1})",
                spec.name,
                got,
                paper
            );
        }
    }

    #[test]
    fn medium_circuits_run_end_to_end() {
        use svsim_core::{SimConfig, Simulator};
        for spec in medium_suite() {
            let c = spec.circuit().unwrap();
            let mut sim =
                Simulator::new(c.n_qubits(), SimConfig::single_device().with_seed(11)).unwrap();
            sim.run(&c).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(
                (sim.state().norm_sqr() - 1.0).abs() < 1e-9,
                "{} must stay normalized",
                spec.name
            );
        }
    }
}
