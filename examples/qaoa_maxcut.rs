//! QAOA for MaxCut — the third variational-algorithm family the paper's
//! introduction motivates. Optimizes a 2-layer QAOA on a ring and a random
//! graph, reporting approximation ratios.
//!
//! ```text
//! cargo run --release --example qaoa_maxcut
//! ```

use sv_sim::core::SimConfig;
use sv_sim::vqa::QaoaMaxCut;
use sv_sim::workloads::qaoa::Graph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (name, graph, layers) in [
        ("6-cycle", Graph::cycle(6), 2),
        ("random G(8, 0.4)", Graph::random(8, 0.4, 17), 2),
    ] {
        let problem = QaoaMaxCut::new(graph, layers, SimConfig::single_device());
        let result = problem.run(150)?;
        println!(
            "{name}: expected cut {:.3} / optimum {} -> ratio {:.3} \
             (gammas {:?}, betas {:?})",
            result.expected_cut,
            result.optimum,
            result.ratio,
            result
                .gammas
                .iter()
                .map(|g| (g * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            result
                .betas
                .iter()
                .map(|b| (b * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
        );
        println!(
            "  trial circuits synthesized: {}",
            problem.circuit_evals.get()
        );
    }
    println!("\nnote: depth-p QAOA on a ring is bounded by (2p+1)/(2p+2); p=2 -> 5/6.");
    Ok(())
}
