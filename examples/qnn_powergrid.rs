//! The paper's §5 power-grid use case: train a variational QNN to classify
//! contingency violations (synthetic dataset; see DESIGN.md).
//!
//! ```text
//! cargo run --release --example qnn_powergrid
//! ```

use sv_sim::core::SimConfig;
use sv_sim::vqa::{synthetic_grid_cases, QnnModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = synthetic_grid_cases(20, 11);
    let test = synthetic_grid_cases(37, 12);
    println!(
        "training on {} contingency cases, testing on {} (4 features each)",
        train.len(),
        test.len()
    );

    let mut model = QnnModel::new(2, 5, SimConfig::single_device());
    let accuracies = model.train(&train, &test, 2, 120, 7)?;
    for (epoch, acc) in accuracies.iter().enumerate() {
        println!("epoch {epoch}: test accuracy {:.2}%", acc * 100.0);
    }
    println!(
        "trial circuits synthesized during training: {}",
        model.circuit_evals.get()
    );

    // Inspect a few predictions.
    println!("\nsample predictions (P(violation) vs label):");
    for case in test.iter().take(6) {
        println!(
            "  features {:?} -> {:.3} (label {})",
            case.features,
            model.predict(&case.features),
            case.violation
        );
    }
    Ok(())
}
