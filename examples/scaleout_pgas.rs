//! The PGAS mechanics up close: run a circuit on the SHMEM scale-out
//! backend, compare measured one-sided traffic against the closed-form
//! prediction, and price the same circuit on the modeled Summit fabric.
//!
//! ```text
//! cargo run --release --example scaleout_pgas
//! ```

use sv_sim::core::{SimConfig, Simulator};
use sv_sim::perfmodel::{compile_for_estimate, devices, interconnects, scale_out};
use sv_sim::workloads::algos::qft;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 12u32;
    let circuit = qft(n)?;
    println!("QFT on {n} qubits: {} gates", circuit.stats().gates);

    for n_pes in [2usize, 4, 8] {
        let mut sim = Simulator::new(n, SimConfig::scale_out(n_pes))?;
        let predicted = sim.predict_traffic(&circuit);
        let summary = sim.run(&circuit)?;
        let measured = summary.total_traffic();
        println!(
            "\n{n_pes} PEs: measured {} remote one-sided ops ({} bytes), predicted {} \
             amplitude ops ({} bytes)",
            measured.remote_ops(),
            measured.remote_bytes(),
            predicted.remote_amp_ops,
            predicted.remote_bytes,
        );
        // The SHMEM fabric moves re and im separately: 2 f64 ops per
        // amplitude op — the prediction is exact.
        assert_eq!(measured.remote_ops(), 2 * predicted.remote_amp_ops);
        println!(
            "  remote fraction {:.1}% | barriers {}",
            predicted.remote_fraction() * 100.0,
            measured.barriers
        );
    }

    // Price a Summit-scale run of the same circuit shape at n=20.
    let big = qft(20)?;
    let compiled = compile_for_estimate(&big);
    println!("\nmodeled Summit latency for QFT-20:");
    for pes in [32u64, 128, 512, 1024] {
        let t = scale_out(
            &devices::POWER9,
            &interconnects::SUMMIT_IB,
            &compiled,
            20,
            pes,
            32,
            60.0,
        );
        println!(
            "  {pes:>5} CPU PEs: {:>9.3} ms (compute {:.0}%, comm {:.0}%, sync {:.0}%)",
            t.total() * 1e3,
            100.0 * t.compute_s / t.total(),
            100.0 * t.comm_s / t.total(),
            100.0 * t.sync_s / t.total(),
        );
    }
    Ok(())
}
