//! Validating an algorithm under NISQ-style noise (the paper's §1
//! motivation for fast simulation): GHZ parity correlations decay with the
//! depolarizing rate, averaged over Monte-Carlo trajectories.
//!
//! ```text
//! cargo run --release --example noisy_ghz
//! ```

use sv_sim::core::{trajectory_average, NoiseModel, SimConfig};
use sv_sim::ir::PauliString;
use sv_sim::workloads::algos::ghz;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 6u32;
    let circuit = ghz(n)?;
    let zz = PauliString::parse("ZZIIII")?;
    let xxxxxx = PauliString::parse("XXXXXX")?;
    println!("GHZ-{n} under depolarizing noise, 300 trajectories each:");
    println!("{:>8}  {:>10}  {:>10}", "p1", "<Z0Z1>", "<X^n>");
    for p in [0.0, 0.002, 0.005, 0.01, 0.02, 0.05] {
        let model = NoiseModel::depolarizing(p);
        let corr_zz = trajectory_average(
            &circuit,
            &model,
            SimConfig::single_device(),
            300,
            42,
            |sim| sim.expval_pauli(&zz),
        )?;
        let corr_x = trajectory_average(
            &circuit,
            &model,
            SimConfig::single_device(),
            300,
            43,
            |sim| sim.expval_pauli(&xxxxxx),
        )?;
        println!("{p:>8.3}  {corr_zz:>10.4}  {corr_x:>10.4}");
    }
    println!("\nboth correlators decay toward 0 as the error rate rises —");
    println!("the kind of validation sweep the paper argues needs a fast simulator.");
    Ok(())
}
