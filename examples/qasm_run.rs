//! Run an OpenQASM 2.0 program end to end: parse, elaborate, simulate,
//! and print the measurement histogram.
//!
//! ```text
//! cargo run --release --example qasm_run            # built-in teleport demo
//! cargo run --release --example qasm_run -- file.qasm
//! ```

use sv_sim::core::{SimConfig, Simulator};
use sv_sim::qasm::parse_circuit;

/// Quantum teleportation with mid-circuit measurement and classically
/// controlled corrections — exercises `measure`, `if`, user gates, and the
/// qelib gate set.
const TELEPORT: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c0[1];
creg c1[1];
creg out[1];

gate payload a { ry(pi/3) a; }

// Prepare the state to teleport on q[0].
payload q[0];
// Bell pair between q[1] and q[2].
h q[1];
cx q[1], q[2];
// Bell measurement of q[0], q[1].
cx q[0], q[1];
h q[0];
measure q[0] -> c0[0];
measure q[1] -> c1[0];
// Corrections on q[2].
if (c1 == 1) x q[2];
if (c0 == 1) z q[2];
// Read out the teleported qubit.
measure q[2] -> out[0];
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => TELEPORT.to_string(),
    };
    let circuit = parse_circuit(&source)?;
    let stats = circuit.stats();
    println!(
        "parsed: {} qubits, {} cbits, {} gates ({} entangling), depth {}",
        circuit.n_qubits(),
        circuit.n_cbits(),
        stats.gates,
        stats.cx,
        stats.depth
    );

    // Run many shots: rebuild the simulator per shot because the circuit
    // contains mid-circuit measurement (collapse is stateful).
    let shots = 2000;
    let mut histogram = std::collections::BTreeMap::new();
    for shot in 0..shots {
        let mut sim = Simulator::new(
            circuit.n_qubits(),
            SimConfig::single_device().with_seed(1000 + shot),
        )?;
        let summary = sim.run(&circuit)?;
        *histogram.entry(summary.cbits).or_insert(0usize) += 1;
    }
    println!("classical-register histogram over {shots} shots:");
    for (bits, count) in &histogram {
        println!(
            "  {:0width$b} -> {count}",
            bits,
            width = circuit.n_cbits() as usize
        );
    }
    // For the teleport demo: the `out` bit (bit 2) should be 1 with
    // probability sin^2(pi/6) = 0.25 regardless of the syndrome bits.
    let p_out: f64 = histogram
        .iter()
        .filter(|(bits, _)| (*bits >> 2) & 1 == 1)
        .map(|(_, count)| *count as f64)
        .sum::<f64>()
        / shots as f64;
    println!("P(out = 1) = {p_out:.3} (payload RY(pi/3) gives 0.25)");
    Ok(())
}
