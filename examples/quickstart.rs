//! Quickstart: build a GHZ circuit, run it on every backend, sample it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sv_sim::core::{measure, SimConfig, Simulator};
use sv_sim::ir::{Circuit, GateKind, PauliString};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 5-qubit GHZ state: H on qubit 0, then a CX chain.
    let n = 5u32;
    let mut circuit = Circuit::new(n);
    circuit.apply(GateKind::H, &[0], &[])?;
    for q in 0..n - 1 {
        circuit.apply(GateKind::CX, &[q, q + 1], &[])?;
    }
    println!("circuit:\n{circuit}");

    // Run on the single-device backend.
    let mut sim = Simulator::new(n, SimConfig::single_device().with_seed(7))?;
    let summary = sim.run(&circuit)?;
    println!("executed {} gates", summary.gates);
    let probs = sim.probabilities();
    println!(
        "P(|00000>) = {:.3}, P(|11111>) = {:.3}",
        probs[0],
        probs[(1 << n) - 1]
    );

    // Expectation values: GHZ correlations.
    let zz = PauliString::parse("ZZIII")?;
    println!("<Z0 Z1> = {:+.3}", sim.expval_pauli(&zz));
    let xxxxx = PauliString::parse("XXXXX")?;
    println!("<X0 X1 X2 X3 X4> = {:+.3}", sim.expval_pauli(&xxxxx));

    // Sample 1000 shots.
    let samples = sim.sample(1000);
    let hist = measure::histogram(&samples);
    println!("sampled histogram: {hist:?}");

    // The same circuit through the PGAS scale-out backend (4 SHMEM PEs).
    let mut shmem_sim = Simulator::new(n, SimConfig::scale_out(4).with_seed(7))?;
    let summary = shmem_sim.run(&circuit)?;
    let traffic = summary.total_traffic();
    println!(
        "scale-out run: {} one-sided ops, {} remote ({} bytes over the fabric)",
        traffic.total_ops(),
        traffic.remote_ops(),
        traffic.remote_bytes()
    );
    assert!(shmem_sim.state().max_diff(sim.state()) < 1e-12);
    println!("scale-out state matches single-device state exactly.");
    Ok(())
}
