//! The paper's §5 chemistry use case: VQE for the H2 bond energy with the
//! UCCSD ansatz and Nelder-Mead (Figure 16).
//!
//! ```text
//! cargo run --release --example vqe_h2
//! ```

use sv_sim::core::SimConfig;
use sv_sim::vqa::{h2_sto3g, h2_vqe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vqe = h2_vqe(SimConfig::single_device())?;
    println!("H2 / STO-3G at 0.7414 A, 4 spin-orbital qubits, UCCSD (5 parameters)");
    let exact = h2_sto3g().ground_energy_dense();
    println!("FCI ground energy (dense diagonalization): {exact:.6} Ha");

    let result = vqe.run(58);
    println!("\niter  best energy (Ha)");
    for (i, e) in result.energy_history.iter().enumerate().step_by(4) {
        println!("{i:>4}  {e:.6}");
    }
    println!(
        "\nconverged: {:.6} Ha ({:+.1e} vs FCI) after {} circuit evaluations",
        result.energy,
        result.energy - exact,
        result.circuit_evals
    );
    println!("optimal parameters: {:?}", result.params);
    Ok(())
}
