//! # sv-sim
//!
//! A from-scratch Rust reproduction of **SV-Sim: Scalable PGAS-Based State
//! Vector Simulation of Quantum Circuits** (Li et al., SC '21).
//!
//! This facade crate re-exports the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `svsim-types` | complex numbers, index math, RNG, errors |
//! | [`ir`] | `svsim-ir` | gate ISA (Table 1), circuits, QIR gate set (Table 2) |
//! | [`qasm`] | `svsim-qasm` | OpenQASM 2.0 frontend |
//! | [`shmem`] | `svsim-shmem` | PGAS/SHMEM runtime substrate |
//! | [`core`] | `svsim-core` | the simulator backends (single-device, scale-up, scale-out) |
//! | [`perfmodel`] | `svsim-perfmodel` | platform performance model (Table 3, Figs. 6-13) |
//! | [`workloads`] | `svsim-workloads` | QASMBench-style circuits (Table 4), UCCSD, QNN |
//! | [`baselines`] | `svsim-baselines` | Aer/qsim/Q#-style comparison simulators (Fig. 14) |
//! | [`vqa`] | `svsim-vqa` | VQE and QNN training loops (Figs. 16-17, §5) |
//! | [`engine`] | `svsim-engine` | persistent job-scheduling + batching service layer |
//! | [`analyzer`] | `svsim-analyzer` | static + dynamic race analysis of the SHMEM protocol |
//! | [`verify`] | `svsim-verify` | exhaustive interleaving checker for the SHMEM protocols |
//!
//! ## Quickstart
//!
//! ```
//! use sv_sim::ir::{Circuit, GateKind};
//! use sv_sim::core::{SimConfig, Simulator};
//!
//! // 3-qubit GHZ state.
//! let mut c = Circuit::new(3);
//! c.apply(GateKind::H, &[0], &[]).unwrap();
//! c.apply(GateKind::CX, &[0, 1], &[]).unwrap();
//! c.apply(GateKind::CX, &[1, 2], &[]).unwrap();
//!
//! let mut sim = Simulator::new(3, SimConfig::single_device()).unwrap();
//! sim.run(&c).unwrap();
//! let p = sim.probabilities();
//! assert!((p[0] - 0.5).abs() < 1e-12 && (p[7] - 0.5).abs() < 1e-12);
//! ```

pub use svsim_analyzer as analyzer;
pub use svsim_baselines as baselines;
pub use svsim_core as core;
pub use svsim_engine as engine;
pub use svsim_ir as ir;
pub use svsim_perfmodel as perfmodel;
pub use svsim_qasm as qasm;
pub use svsim_shmem as shmem;
pub use svsim_types as types;
pub use svsim_verify as verify;
pub use svsim_vqa as vqa;
pub use svsim_workloads as workloads;
