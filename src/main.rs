//! `sv-sim` — command-line front door to the simulator.
//!
//! ```text
//! sv-sim run <file.qasm> [--backend single|up:N|out:N] [--shots N]
//!                        [--seed S] [--generic] [--runtime-parse]
//!                        [--optimize] [--amplitudes K] [--traffic]
//! sv-sim stats <file.qasm>
//! sv-sim estimate <file.qasm> --platform <name> [--workers N]
//! sv-sim platforms
//! ```

use std::process::ExitCode;
use sv_sim::core::{measure, BackendKind, DispatchMode, SimConfig, Simulator};
use sv_sim::perfmodel::{compile_for_estimate, devices, interconnects, scale_up, single_device};
use sv_sim::qasm::parse_circuit;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sv-sim run <file.qasm> [--backend single|up:N|out:N] [--shots N] \
         [--seed S] [--generic] [--runtime-parse] [--optimize] [--amplitudes K] [--traffic]\n  \
         sv-sim stats <file.qasm>\n  \
         sv-sim estimate <file.qasm> --platform <name> [--workers N]\n  \
         sv-sim platforms"
    );
    ExitCode::from(2)
}

fn platform_by_name(name: &str) -> Option<&'static sv_sim::perfmodel::DeviceSpec> {
    match name.to_ascii_lowercase().as_str() {
        "epyc" | "epyc7742" => Some(&devices::EPYC_7742),
        "p8276" | "intel" => Some(&devices::INTEL_P8276),
        "p8276-avx512" | "intel-avx512" => Some(&devices::INTEL_P8276_AVX512),
        "power9" | "p9" => Some(&devices::POWER9),
        "phi" | "phi7230" => Some(&devices::PHI_7230),
        "phi-avx512" => Some(&devices::PHI_7230_AVX512),
        "v100" => Some(&devices::V100),
        "a100" => Some(&devices::A100),
        "mi100" => Some(&devices::MI100),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let result = match command.as_str() {
        "run" => cmd_run(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "estimate" => cmd_estimate(&args[1..]),
        "platforms" => {
            println!("modeled platforms (see svsim-perfmodel):");
            for d in [
                &devices::EPYC_7742,
                &devices::INTEL_P8276,
                &devices::INTEL_P8276_AVX512,
                &devices::POWER9,
                &devices::PHI_7230,
                &devices::PHI_7230_AVX512,
                &devices::V100,
                &devices::A100,
                &devices::MI100,
            ] {
                println!(
                    "  {:<22} {:>6.1} GB/s effective, {:>7.0} GF/s, {:.2} us/gate floor",
                    d.name, d.mem_bw_gbps, d.flops_gflops, d.gate_overhead_us
                );
            }
            Ok(())
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<sv_sim::ir::Circuit, Box<dyn std::error::Error>> {
    let src = std::fs::read_to_string(path)?;
    Ok(parse_circuit(&src)?)
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing <file.qasm>")?;
    let circuit = load(path)?;
    let backend = match flag_value(args, "--backend") {
        None | Some("single") => BackendKind::SingleDevice,
        Some(spec) => {
            let (kind, count) = spec
                .split_once(':')
                .ok_or("backend must be single, up:N, or out:N")?;
            let n: usize = count.parse()?;
            match kind {
                "up" => BackendKind::ScaleUp { n_devices: n },
                "out" => BackendKind::ScaleOut { n_pes: n },
                other => return Err(format!("unknown backend `{other}`").into()),
            }
        }
    };
    let mut config = SimConfig::single_device();
    config.backend = backend;
    if args.iter().any(|a| a == "--generic") {
        config.specialized = false;
    }
    if args.iter().any(|a| a == "--runtime-parse") {
        config.dispatch = DispatchMode::RuntimeParse;
    }
    if let Some(seed) = flag_value(args, "--seed") {
        config.seed = seed.parse()?;
    }
    let shots: usize = flag_value(args, "--shots").map_or(Ok(1024), str::parse)?;

    let circuit = if args.iter().any(|a| a == "--optimize") {
        let (optimized, stats) = sv_sim::ir::optimize(&circuit);
        println!(
            "optimizer: {} -> {} gates ({} cancelled, {} fused, {} dropped)",
            stats.before, stats.after, stats.cancelled, stats.fused, stats.dropped
        );
        optimized
    } else {
        circuit
    };

    let start = std::time::Instant::now();
    let mut sim = Simulator::new(circuit.n_qubits(), config)?;
    let summary = sim.run(&circuit)?;
    let elapsed = start.elapsed();
    println!(
        "ran {} gates on {} qubits in {:.3} ms ({:?})",
        summary.gates,
        circuit.n_qubits(),
        elapsed.as_secs_f64() * 1e3,
        config.backend,
    );
    if circuit.n_cbits() > 0 {
        println!(
            "classical register: {:0width$b}",
            summary.cbits,
            width = circuit.n_cbits() as usize
        );
    }
    if args.iter().any(|a| a == "--traffic") {
        let t = summary.total_traffic();
        println!(
            "traffic: {} one-sided ops ({} remote, {} bytes over the fabric), {} barriers",
            t.total_ops(),
            t.remote_ops(),
            t.remote_bytes(),
            t.barriers
        );
    }
    if let Some(k) = flag_value(args, "--amplitudes") {
        let k: usize = k.parse()?;
        let amps = sim.amplitudes();
        let mut indexed: Vec<(usize, f64)> = amps
            .iter()
            .enumerate()
            .map(|(i, a)| (i, a.norm_sqr()))
            .collect();
        indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("top {k} amplitudes:");
        for (idx, p) in indexed.into_iter().take(k) {
            println!(
                "  |{:0width$b}>  p={:.6}  amp={}",
                idx,
                p,
                amps[idx],
                width = circuit.n_qubits() as usize
            );
        }
    }
    if shots > 0 {
        let samples = sim.sample(shots);
        let hist = measure::histogram(&samples);
        println!("sampled {shots} shots:");
        for (state, count) in hist.iter().take(16) {
            println!(
                "  |{:0width$b}> x{count}",
                state,
                width = circuit.n_qubits() as usize
            );
        }
        if hist.len() > 16 {
            println!("  ... {} more outcomes", hist.len() - 16);
        }
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing <file.qasm>")?;
    let circuit = load(path)?;
    let s = circuit.stats();
    println!("qubits:     {}", s.qubits);
    println!("cbits:      {}", circuit.n_cbits());
    println!("gates:      {}", s.gates);
    println!("entangling: {}", s.cx);
    println!("measures:   {}", s.measures);
    println!("depth:      {}", s.depth);
    println!(
        "state size: {} bytes",
        sv_sim::types::state_bytes(s.qubits as usize)
    );
    Ok(())
}

fn cmd_estimate(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing <file.qasm>")?;
    let circuit = load(path)?;
    let name = flag_value(args, "--platform").ok_or("missing --platform")?;
    let dev = platform_by_name(name).ok_or_else(|| format!("unknown platform `{name}`"))?;
    let compiled = compile_for_estimate(&circuit);
    let workers: u64 = flag_value(args, "--workers").map_or(Ok(1), str::parse)?;
    let breakdown = if workers <= 1 {
        single_device(dev, &compiled, circuit.n_qubits())
    } else {
        // Pick a plausible fabric for the device family.
        let ic = if dev.cache_mib > 0.0 {
            &interconnects::QPI
        } else {
            &interconnects::NVSWITCH
        };
        scale_up(dev, ic, &compiled, circuit.n_qubits(), workers)
    };
    println!(
        "modeled latency on {} x{workers}: {:.3} ms (compute {:.3} ms, comm {:.3} ms, sync {:.3} ms)",
        dev.name,
        breakdown.total() * 1e3,
        breakdown.compute_s * 1e3,
        breakdown.comm_s * 1e3,
        breakdown.sync_s * 1e3,
    );
    Ok(())
}
