//! `sv-sim` — command-line front door to the simulator.
//!
//! ```text
//! sv-sim run <file.qasm> [--backend single|up:N|out:N] [--pe-mode thread|process]
//!                        [--shots N] [--seed S] [--generic] [--runtime-parse]
//!                        [--optimize] [--remap] [--fuse W] [--amplitudes K] [--traffic]
//! sv-sim stats <file.qasm>
//! sv-sim estimate <file.qasm> --platform <name> [--workers N]
//! sv-sim platforms
//! sv-sim serve-bench [--workers N] [--sweeps N] [--one-shots N]
//!                    [--batch N] [--seed S] [--reps N]
//!                    [--model pipeline|legacy] [--stage-capacity N]
//!                    [--sched fifo|lifo] [--limit-memory-mb N]
//!                    [--fuse W]
//!                    [--compare [--smalls N] [--shots N] [--out FILE]
//!                               [--assert-min-ratio R] [--assert-max-p99-ratio R]]
//! sv-sim fuse-bench [--window W] [--seed S] [--reps N] [--min-gates G]
//!                   [--max-qubits M] [--out FILE] [--assert-min-gates-per-pass R]
//! sv-sim fault-bench [--fault kill-pe|drop-put|poison-barrier|hang-pe|torn-checkpoint|exec]
//!                    [--chaos] [--recovery retry|respawn|degrade] [--hang-ms MS]
//!                    [--pes N] [--pe-mode thread|process] [--every K]
//!                    [--seed S] [--one-shots N] [--sweeps N] [--attempts N]
//! sv-sim analyze <file.qasm>|--suite [--pes N] [--detect]
//!                [--merge-epochs I] [--max-qubits M] [--seed S]
//! sv-sim verify [--max-states N]
//! sv-sim lint [--root DIR] [--deny-warnings]
//! ```

use std::process::ExitCode;
use sv_sim::core::{measure, BackendKind, DispatchMode, SimConfig, Simulator};
use sv_sim::perfmodel::{compile_for_estimate, devices, interconnects, scale_up, single_device};
use sv_sim::qasm::parse_circuit;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sv-sim run <file.qasm> [--backend single|up:N|out:N] \
         [--pe-mode thread|process] [--shots N] \
         [--seed S] [--generic] [--runtime-parse] [--optimize] [--remap] [--fuse W] \
         [--amplitudes K] [--traffic]\n  \
         sv-sim stats <file.qasm>\n  \
         sv-sim estimate <file.qasm> --platform <name> [--workers N]\n  \
         sv-sim platforms\n  \
         sv-sim serve-bench [--workers N] [--sweeps N] [--one-shots N] [--batch N] [--seed S] [--reps N] \
         [--model pipeline|legacy] [--stage-capacity N] [--sched fifo|lifo] [--limit-memory-mb N] \
         [--fuse W] [--compare [--smalls N] [--shots N] [--out FILE] [--assert-min-ratio R] \
         [--assert-max-p99-ratio R]]\n  \
         sv-sim fuse-bench [--window W] [--seed S] [--reps N] [--min-gates G] [--max-qubits M] \
         [--out FILE] [--assert-min-gates-per-pass R]\n  \
         sv-sim fault-bench [--fault kill-pe|drop-put|poison-barrier|hang-pe|torn-checkpoint|exec] \
         [--chaos] [--recovery retry|respawn|degrade] [--hang-ms MS] [--pes N] \
         [--pe-mode thread|process] [--every K] \
         [--seed S] [--one-shots N] [--sweeps N] [--attempts N]\n  \
         sv-sim analyze <file.qasm>|--suite [--pes N] [--detect] [--remap] [--merge-epochs I] \
         [--max-qubits M] [--seed S]\n  \
         sv-sim remap-bench [--pes N] [--seed S] [--max-qubits M] [--min-gates G] \
         [--out FILE] [--assert-max-ratio R]\n  \
         sv-sim verify [--max-states N]\n  \
         sv-sim lint [--root DIR] [--deny-warnings]"
    );
    ExitCode::from(2)
}

fn platform_by_name(name: &str) -> Option<&'static sv_sim::perfmodel::DeviceSpec> {
    match name.to_ascii_lowercase().as_str() {
        "epyc" | "epyc7742" => Some(&devices::EPYC_7742),
        "p8276" | "intel" => Some(&devices::INTEL_P8276),
        "p8276-avx512" | "intel-avx512" => Some(&devices::INTEL_P8276_AVX512),
        "power9" | "p9" => Some(&devices::POWER9),
        "phi" | "phi7230" => Some(&devices::PHI_7230),
        "phi-avx512" => Some(&devices::PHI_7230_AVX512),
        "v100" => Some(&devices::V100),
        "a100" => Some(&devices::A100),
        "mi100" => Some(&devices::MI100),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let result = match command.as_str() {
        "run" => cmd_run(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "estimate" => cmd_estimate(&args[1..]),
        "serve-bench" => cmd_serve_bench(&args[1..]),
        "fault-bench" => cmd_fault_bench(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "remap-bench" => cmd_remap_bench(&args[1..]),
        "fuse-bench" => cmd_fuse_bench(&args[1..]),
        "verify" => cmd_verify(&args[1..]),
        "lint" => cmd_lint(&args[1..]),
        "platforms" => {
            println!("modeled platforms (see svsim-perfmodel):");
            for d in [
                &devices::EPYC_7742,
                &devices::INTEL_P8276,
                &devices::INTEL_P8276_AVX512,
                &devices::POWER9,
                &devices::PHI_7230,
                &devices::PHI_7230_AVX512,
                &devices::V100,
                &devices::A100,
                &devices::MI100,
            ] {
                println!(
                    "  {:<22} {:>6.1} GB/s effective, {:>7.0} GF/s, {:.2} us/gate floor",
                    d.name, d.mem_bw_gbps, d.flops_gflops, d.gate_overhead_us
                );
            }
            Ok(())
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<sv_sim::ir::Circuit, Box<dyn std::error::Error>> {
    let src = std::fs::read_to_string(path)?;
    Ok(parse_circuit(&src)?)
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing <file.qasm>")?;
    let circuit = load(path)?;
    let backend = match flag_value(args, "--backend") {
        None | Some("single") => BackendKind::SingleDevice,
        Some(spec) => {
            let (kind, count) = spec
                .split_once(':')
                .ok_or("backend must be single, up:N, or out:N")?;
            let n: usize = count.parse()?;
            match kind {
                "up" => BackendKind::ScaleUp { n_devices: n },
                "out" => BackendKind::ScaleOut { n_pes: n },
                other => return Err(format!("unknown backend `{other}`").into()),
            }
        }
    };
    let mut config = SimConfig::single_device();
    config.backend = backend;
    if args.iter().any(|a| a == "--generic") {
        config.specialized = false;
    }
    if args.iter().any(|a| a == "--runtime-parse") {
        config.dispatch = DispatchMode::RuntimeParse;
    }
    if args.iter().any(|a| a == "--remap") {
        if !matches!(backend, BackendKind::ScaleOut { .. }) {
            return Err("--remap applies to the scale-out backend (--backend out:N)".into());
        }
        config.remap = true;
    }
    match flag_value(args, "--pe-mode") {
        None | Some("thread") => {}
        Some("process") => {
            if !matches!(backend, BackendKind::ScaleOut { .. }) {
                return Err("--pe-mode process applies to the scale-out backend \
                            (--backend out:N)"
                    .into());
            }
            config.shmem_backend = sv_sim::core::ShmemBackend::Process;
        }
        Some(other) => return Err(format!("unknown PE mode `{other}` (thread|process)").into()),
    }
    if let Some(seed) = flag_value(args, "--seed") {
        config.seed = seed.parse()?;
    }
    if let Some(window) = flag_value(args, "--fuse") {
        config = config.with_fusion(window.parse()?);
    }
    let shots: usize = flag_value(args, "--shots").map_or(Ok(1024), str::parse)?;

    let circuit = if args.iter().any(|a| a == "--optimize") {
        let (optimized, stats) = sv_sim::ir::optimize(&circuit);
        println!(
            "optimizer: {} -> {} gates ({} cancelled, {} fused, {} dropped)",
            stats.before, stats.after, stats.cancelled, stats.fused, stats.dropped
        );
        optimized
    } else {
        circuit
    };

    let start = std::time::Instant::now();
    let mut sim = Simulator::new(circuit.n_qubits(), config)?;
    let summary = sim.run(&circuit)?;
    let elapsed = start.elapsed();
    println!(
        "ran {} gates on {} qubits in {:.3} ms ({:?})",
        summary.gates,
        circuit.n_qubits(),
        elapsed.as_secs_f64() * 1e3,
        config.backend,
    );
    if config.fuse > 0 {
        let plan = sv_sim::core::CompiledPlan::compile(&circuit, circuit.n_qubits(), &config);
        println!(
            "fusion: window {} collapsed {} kernels into {} amplitude passes ({:.2} gates/pass)",
            plan.fuse_window(),
            plan.n_source_kernels(),
            plan.n_kernels(),
            plan.n_source_kernels() as f64 / plan.n_kernels().max(1) as f64,
        );
    }
    if circuit.n_cbits() > 0 {
        println!(
            "classical register: {:0width$b}",
            summary.cbits,
            width = circuit.n_cbits() as usize
        );
    }
    if args.iter().any(|a| a == "--traffic") {
        let t = summary.total_traffic();
        println!(
            "traffic: {} one-sided ops ({} remote, {} bytes over the fabric), {} barriers",
            t.total_ops(),
            t.remote_ops(),
            t.remote_bytes(),
            t.barriers
        );
        if summary.remap_swaps > 0 {
            println!("remap: {} relabeling slab exchanges", summary.remap_swaps);
        }
    }
    if let Some(k) = flag_value(args, "--amplitudes") {
        let k: usize = k.parse()?;
        let amps = sim.amplitudes();
        let mut indexed: Vec<(usize, f64)> = amps
            .iter()
            .enumerate()
            .map(|(i, a)| (i, a.norm_sqr()))
            .collect();
        indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("top {k} amplitudes:");
        for (idx, p) in indexed.into_iter().take(k) {
            println!(
                "  |{:0width$b}>  p={:.6}  amp={}",
                idx,
                p,
                amps[idx],
                width = circuit.n_qubits() as usize
            );
        }
    }
    if shots > 0 {
        let samples = sim.sample(shots);
        let hist = measure::histogram(&samples);
        println!("sampled {shots} shots:");
        for (state, count) in hist.iter().take(16) {
            println!(
                "  |{:0width$b}> x{count}",
                state,
                width = circuit.n_qubits() as usize
            );
        }
        if hist.len() > 16 {
            println!("  ... {} more outcomes", hist.len() - 16);
        }
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing <file.qasm>")?;
    let circuit = load(path)?;
    let s = circuit.stats();
    println!("qubits:     {}", s.qubits);
    println!("cbits:      {}", circuit.n_cbits());
    println!("gates:      {}", s.gates);
    println!("entangling: {}", s.cx);
    println!("measures:   {}", s.measures);
    println!("depth:      {}", s.depth);
    println!(
        "state size: {} bytes",
        sv_sim::types::state_bytes(s.qubits as usize)
    );
    Ok(())
}

fn cmd_estimate(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing <file.qasm>")?;
    let circuit = load(path)?;
    let name = flag_value(args, "--platform").ok_or("missing --platform")?;
    let dev = platform_by_name(name).ok_or_else(|| format!("unknown platform `{name}`"))?;
    let compiled = compile_for_estimate(&circuit);
    let workers: u64 = flag_value(args, "--workers").map_or(Ok(1), str::parse)?;
    let breakdown = if workers <= 1 {
        single_device(dev, &compiled, circuit.n_qubits())
    } else {
        // Pick a plausible fabric for the device family.
        let ic = if dev.cache_mib > 0.0 {
            &interconnects::QPI
        } else {
            &interconnects::NVSWITCH
        };
        scale_up(dev, ic, &compiled, circuit.n_qubits(), workers)
    };
    println!(
        "modeled latency on {} x{workers}: {:.3} ms (compute {:.3} ms, comm {:.3} ms, sync {:.3} ms)",
        dev.name,
        breakdown.total() * 1e3,
        breakdown.compute_s * 1e3,
        breakdown.comm_s * 1e3,
        breakdown.sync_s * 1e3,
    );
    Ok(())
}

/// Parse `--model pipeline|legacy` (pipeline — the engine default — when
/// absent).
fn parse_model(args: &[String]) -> Result<sv_sim::engine::ExecutionModel, String> {
    use sv_sim::engine::ExecutionModel;
    match flag_value(args, "--model") {
        None | Some("pipeline") => Ok(ExecutionModel::Pipeline),
        Some("legacy") => Ok(ExecutionModel::Legacy),
        Some(other) => Err(format!("unknown --model {other} (pipeline|legacy)")),
    }
}

/// Parse `--sched fifo|lifo` (FIFO when absent).
fn parse_sched(args: &[String]) -> Result<sv_sim::engine::SchedMode, String> {
    use sv_sim::engine::SchedMode;
    match flag_value(args, "--sched") {
        None | Some("fifo") => Ok(SchedMode::Fifo),
        Some("lifo") => Ok(SchedMode::Lifo),
        Some(other) => Err(format!("unknown --sched {other} (fifo|lifo)")),
    }
}

/// Parse `--limit-memory-mb N` into the engine's allocation mode
/// (unbounded packet count when absent).
fn parse_alloc(args: &[String]) -> Result<sv_sim::engine::AllocMode, Box<dyn std::error::Error>> {
    use sv_sim::engine::AllocMode;
    Ok(match flag_value(args, "--limit-memory-mb") {
        Some(mb) => AllocMode::LimitMemory(mb.parse::<u64>()?.saturating_mul(1024 * 1024)),
        None => AllocMode::default(),
    })
}

/// Submit treating backpressure as flow control: a rejected submission
/// (`QueueFull`, or `MemoryExceeded` under `AllocMode::LimitMemory`) is
/// the engine saying "later", so the bench client parks briefly and
/// resubmits — exactly what a real front-end does with a 429. Any other
/// refusal is a real error, and sustained rejection (~5 s) gives up.
fn submit_flow_controlled(
    engine: &sv_sim::engine::Engine,
    request: &sv_sim::engine::JobRequest,
) -> Result<sv_sim::engine::JobHandle, String> {
    use sv_sim::engine::SubmitError;
    for _ in 0..25_000 {
        match engine.submit(request.clone()) {
            Ok(handle) => return Ok(handle),
            Err(SubmitError::QueueFull | SubmitError::MemoryExceeded { .. }) => {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    Err("engine kept rejecting submissions for ~5s".into())
}

/// `p`-th percentile of an ascending-sorted latency sample (nearest-rank).
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Drive the serving engine with a synthetic request mix — Table 4 medium
/// circuits arriving as OpenQASM one-shots plus QAOA/QNN parameter sweeps —
/// then replay the identical work naively (fresh simulator, re-synthesized
/// circuit per request) and compare wall-clock. With `--compare`, instead
/// race the legacy worker pool against the staged pipeline on one mixed
/// stream (see [`serve_compare`]).
fn cmd_serve_bench(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use std::sync::Arc;
    use std::time::Instant;
    use sv_sim::engine::{Engine, EngineConfig, JobRequest, JobSpec, Priority, SweepReturn};
    use sv_sim::types::SvRng;
    use sv_sim::vqa::{qaoa_params, qaoa_template, qnn_params, qnn_template};
    use sv_sim::workloads::qaoa::Graph;
    use sv_sim::workloads::qnn::qnn_n_weights;

    if args.iter().any(|a| a == "--compare") {
        return serve_compare(args);
    }

    // Default worker count follows EngineConfig::default() (available
    // parallelism): on a single-CPU host extra workers only add context
    // switching, while on multicore hosts they scale the sweep throughput.
    let default_workers = EngineConfig::default().workers;
    let workers: usize = flag_value(args, "--workers").map_or(Ok(default_workers), str::parse)?;
    let sweeps: usize = flag_value(args, "--sweeps").map_or(Ok(240), str::parse)?;
    let one_shots: usize = flag_value(args, "--one-shots").map_or(Ok(12), str::parse)?;
    let max_batch: usize = flag_value(args, "--batch").map_or(Ok(16), str::parse)?;
    let seed: u64 = flag_value(args, "--seed").map_or(Ok(0x5EBE), str::parse)?;
    let reps: usize = flag_value(args, "--reps").map_or(Ok(3), str::parse)?.max(1);
    let model = parse_model(args)?;
    let stage_capacity: usize = flag_value(args, "--stage-capacity").map_or(Ok(0), str::parse)?;
    let sched = parse_sched(args)?;
    let alloc = parse_alloc(args)?;

    // --- Synthetic mix ----------------------------------------------------
    // One-shots cross the service boundary as OpenQASM text; parsing is
    // client work and happens identically on both paths. The circuits are
    // wide-and-shallow state-prep / sampling requests — the one-shot shape
    // a service actually sees in volume, and the one where the `2^n`
    // allocation is a large share of the job (so instance pooling matters).
    use sv_sim::workloads::{algos::cat_state, states::w_state};
    let qasm_sources = [
        ("cat_n16", sv_sim::qasm::to_qasm(&cat_state(16)?)?),
        ("w_n16", sv_sim::qasm::to_qasm(&w_state(16)?)?),
        ("cat_n17", sv_sim::qasm::to_qasm(&cat_state(17)?)?),
        ("w_n17", sv_sim::qasm::to_qasm(&w_state(17)?)?),
    ];

    let graph = Graph::random(8, 0.4, seed);
    let qaoa = qaoa_template(&graph, 2)?;
    let qnn = qnn_template(7, 2)?;
    let n_weights = qnn_n_weights(7, 2);
    let qnn_readout_mask = 1u64 << 7;
    let qaoa_mask = (1u64 << 8) - 1;

    let mut rng = SvRng::seed_from_u64(seed);
    let qaoa_points: Vec<Vec<f64>> = (0..sweeps.div_ceil(2))
        .map(|_| {
            let gammas = [rng.range_f64(-2.0, 2.0), rng.range_f64(-2.0, 2.0)];
            let betas = [rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)];
            qaoa_params(&gammas, &betas)
        })
        .collect();
    let qnn_points: Vec<Vec<f64>> = (0..sweeps / 2)
        .map(|_| {
            let features: Vec<f64> = (0..7).map(|_| rng.range_f64(0.0, 1.0)).collect();
            let weights: Vec<f64> = (0..n_weights).map(|_| rng.range_f64(-1.5, 1.5)).collect();
            qnn_params(&features, &weights)
        })
        .collect();

    println!(
        "serve-bench [{model:?}]: {} one-shots + {} sweep points ({} QAOA, {} QNN), {} workers, batch {}, best of {} reps",
        one_shots,
        qaoa_points.len() + qnn_points.len(),
        qaoa_points.len(),
        qnn_points.len(),
        workers,
        max_batch,
        reps,
    );

    // --- Engine-served path -----------------------------------------------
    // The engine persists across repetitions, as a real service would: the
    // templates stay registered and the instance pool stays warm. Each rep
    // replays the identical request stream; report the best rep (this is a
    // 1-CPU container, so the OS scheduler adds multi-ms run-to-run noise).
    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(workers)
            .with_max_batch(max_batch)
            .with_model(model)
            .with_stage_capacity(stage_capacity)
            .with_sched(sched)
            .with_alloc(alloc),
    );
    let qaoa_id = engine.register_template("qaoa_maxcut_n8", &qaoa)?;
    let qnn_id = engine.register_template("qnn_grid_n8", &qnn)?;

    let mut engine_elapsed = std::time::Duration::MAX;
    let mut engine_checksum = 0.0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let mut handles = Vec::new();
        for (i, (_, src)) in qasm_sources.iter().cycle().take(one_shots).enumerate() {
            let circuit = Arc::new(parse_circuit(src)?);
            let mut config = SimConfig::single_device();
            config.seed = seed ^ i as u64;
            let request = JobRequest::new(JobSpec::OneShot {
                circuit,
                config,
                shots: 0,
                return_state: false,
            })
            .with_priority(if i % 4 == 0 {
                Priority::High
            } else {
                Priority::Normal
            });
            handles.push(submit_flow_controlled(&engine, &request)?);
        }
        // Interleave the two sweep families so coalescing has to pick same-
        // template neighbors out of a mixed queue.
        let mut qa = qaoa_points.iter();
        let mut qn = qnn_points.iter();
        loop {
            let a = qa.next();
            let b = qn.next();
            if a.is_none() && b.is_none() {
                break;
            }
            if let Some(p) = a {
                let request = JobRequest::new(JobSpec::Sweep {
                    template: qaoa_id,
                    params: p.clone(),
                    returning: SweepReturn::ExpZ(qaoa_mask),
                })
                .with_priority(Priority::Low);
                handles.push(submit_flow_controlled(&engine, &request)?);
            }
            if let Some(p) = b {
                let request = JobRequest::new(JobSpec::Sweep {
                    template: qnn_id,
                    params: p.clone(),
                    returning: SweepReturn::ExpZ(qnn_readout_mask),
                })
                .with_priority(Priority::Low);
                handles.push(submit_flow_controlled(&engine, &request)?);
            }
        }
        // Wait newest-first: one blocking wait covers most of the backlog and
        // the remaining results are already published when reached.
        let mut checksum = 0.0f64;
        for h in handles.iter().rev() {
            match h.wait().map_err(|e| e.to_string())? {
                sv_sim::engine::JobOutput::Sweep { value, .. } => {
                    checksum += value.unwrap_or(0.0);
                }
                sv_sim::engine::JobOutput::OneShot { summary, .. } => {
                    checksum += summary.gates as f64;
                }
            }
        }
        engine_elapsed = engine_elapsed.min(t0.elapsed());
        engine_checksum = checksum;
    }
    let metrics = engine.shutdown();

    // --- Naive sequential path --------------------------------------------
    // The same logical work the way a library client does it: re-parse /
    // re-synthesize every circuit, construct a fresh simulator per request.
    let mut naive_elapsed = std::time::Duration::MAX;
    let mut naive_checksum = 0.0f64;
    for _ in 0..reps {
        let t1 = Instant::now();
        let mut checksum = 0.0f64;
        for (i, (_, src)) in qasm_sources.iter().cycle().take(one_shots).enumerate() {
            let circuit = parse_circuit(src)?;
            let mut config = SimConfig::single_device();
            config.seed = seed ^ i as u64;
            let mut sim = Simulator::new(circuit.n_qubits(), config)?;
            checksum += sim.run(&circuit)?.gates as f64;
        }
        for p in &qaoa_points {
            let circuit = qaoa.bind(p)?;
            let mut sim = Simulator::new(8, SimConfig::single_device())?;
            sim.run(&circuit)?;
            checksum += measure::expval_z_mask(sim.state(), qaoa_mask);
        }
        for p in &qnn_points {
            let circuit = qnn.bind(p)?;
            let mut sim = Simulator::new(8, SimConfig::single_device())?;
            sim.run(&circuit)?;
            checksum += measure::expval_z_mask(sim.state(), qnn_readout_mask);
        }
        naive_elapsed = naive_elapsed.min(t1.elapsed());
        naive_checksum = checksum;
    }

    // --- Report ------------------------------------------------------------
    println!();
    println!("{metrics}");
    println!();
    println!(
        "engine-served: {:>9.3} ms  (checksum {engine_checksum:+.9})",
        engine_elapsed.as_secs_f64() * 1e3
    );
    println!(
        "naive serial:  {:>9.3} ms  (checksum {naive_checksum:+.9})",
        naive_elapsed.as_secs_f64() * 1e3
    );
    println!(
        "speedup: {:.2}x",
        naive_elapsed.as_secs_f64() / engine_elapsed.as_secs_f64()
    );
    if metrics.races_detected > 0 {
        return Err(format!("{} SHMEM protocol races detected", metrics.races_detected).into());
    }
    if (engine_checksum - naive_checksum).abs() > 1e-6 {
        return Err(format!(
            "checksum mismatch: engine {engine_checksum} vs naive {naive_checksum}"
        )
        .into());
    }
    Ok(())
}

/// Race the legacy worker pool against the staged pipeline on one mixed
/// request stream and write `BENCH_8.json`.
///
/// The stream is the head-of-line-blocking shape the pipeline exists for:
/// latency-sensitive small one-shots interleaved behind wide one-shots
/// that owe thousands of post-run samples (readback work the pipeline
/// moves off the execute worker), over a background of QAOA/QNN sweep
/// points. Both models receive the *same* `Arc<Circuit>`s — a front-end
/// parse cache — so repeated submissions exercise the compile stage's
/// plan cache. Gates: results must be bit-identical across models
/// (checksums compared exactly), zero SHMEM races, and with
/// `--assert-min-ratio R` the pipeline/legacy throughput ratio becomes a
/// hard floor.
fn serve_compare(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use std::fmt::Write as _;
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    use sv_sim::engine::{
        Engine, EngineConfig, ExecutionModel, JobOutput, JobRequest, JobSpec, MetricsSnapshot,
        Priority, SweepReturn,
    };
    use sv_sim::types::SvRng;
    use sv_sim::vqa::{qaoa_params, qaoa_template, qnn_params, qnn_template};
    use sv_sim::workloads::qaoa::Graph;
    use sv_sim::workloads::qnn::qnn_n_weights;
    use sv_sim::workloads::{algos::cat_state, states::w_state};

    let default_workers = EngineConfig::default().workers;
    let workers: usize = flag_value(args, "--workers").map_or(Ok(default_workers), str::parse)?;
    let max_batch: usize = flag_value(args, "--batch").map_or(Ok(16), str::parse)?;
    let seed: u64 = flag_value(args, "--seed").map_or(Ok(0x5EBE), str::parse)?;
    let reps: usize = flag_value(args, "--reps").map_or(Ok(3), str::parse)?.max(1);
    let smalls: usize = flag_value(args, "--smalls").map_or(Ok(48), str::parse)?;
    let larges: usize = flag_value(args, "--one-shots").map_or(Ok(12), str::parse)?;
    let sweeps: usize = flag_value(args, "--sweeps").map_or(Ok(64), str::parse)?;
    let shots: usize = flag_value(args, "--shots").map_or(Ok(2048), str::parse)?;
    let stage_capacity: usize = flag_value(args, "--stage-capacity").map_or(Ok(0), str::parse)?;
    let sched = parse_sched(args)?;
    let alloc = parse_alloc(args)?;
    let out_path = flag_value(args, "--out").unwrap_or("BENCH_8.json");
    let assert_min_ratio: Option<f64> = flag_value(args, "--assert-min-ratio")
        .map(str::parse)
        .transpose()?;
    let assert_max_p99_ratio: Option<f64> = flag_value(args, "--assert-max-p99-ratio")
        .map(str::parse)
        .transpose()?;
    let fuse: u8 = flag_value(args, "--fuse").map_or(Ok(0), str::parse)?;

    // One-shots cross the service boundary as OpenQASM text. Each source is
    // parsed once and the `Arc<Circuit>` shared across requests — a service
    // front-end holding a parse cache — so repeated submissions of one
    // circuit are exactly the shape the compile stage's plan cache serves.
    // Both models receive the identical `Arc`s. The small circuit is
    // narrow but deep (a hardware-efficient ansatz shape): cheap on
    // amplitudes, expensive to lower, so the cached plan is a real share
    // of its cost.
    const SMALL_QUBITS: u32 = 10;
    const SMALL_LAYERS: u32 = 20;
    const LARGE_QUBITS: u32 = 17;
    let small_circuit = {
        let mut c = sv_sim::ir::Circuit::with_cbits(SMALL_QUBITS, 0);
        for q in 0..SMALL_QUBITS {
            c.apply(sv_sim::ir::GateKind::H, &[q], &[])?;
        }
        for layer in 0..SMALL_LAYERS {
            for q in 0..SMALL_QUBITS {
                let theta = 0.1 * f64::from(layer + 1) + 0.01 * f64::from(q);
                c.apply(sv_sim::ir::GateKind::RY, &[q], &[theta])?;
            }
            for q in 0..SMALL_QUBITS {
                c.apply(sv_sim::ir::GateKind::CX, &[q, (q + 1) % SMALL_QUBITS], &[])?;
            }
        }
        Arc::new(parse_circuit(&sv_sim::qasm::to_qasm(&c)?)?)
    };
    let large_circuits = [
        Arc::new(parse_circuit(&sv_sim::qasm::to_qasm(&cat_state(
            LARGE_QUBITS,
        )?)?)?),
        Arc::new(parse_circuit(&sv_sim::qasm::to_qasm(&w_state(
            LARGE_QUBITS,
        )?)?)?),
    ];

    let graph = Graph::random(8, 0.4, seed);
    let qaoa = qaoa_template(&graph, 2)?;
    let qnn = qnn_template(7, 2)?;
    let n_weights = qnn_n_weights(7, 2);
    let qnn_readout_mask = 1u64 << 7;
    let qaoa_mask = (1u64 << 8) - 1;
    let mut rng = SvRng::seed_from_u64(seed);
    let qaoa_points: Vec<Vec<f64>> = (0..sweeps.div_ceil(2))
        .map(|_| {
            let gammas = [rng.range_f64(-2.0, 2.0), rng.range_f64(-2.0, 2.0)];
            let betas = [rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)];
            qaoa_params(&gammas, &betas)
        })
        .collect();
    let qnn_points: Vec<Vec<f64>> = (0..sweeps / 2)
        .map(|_| {
            let features: Vec<f64> = (0..7).map(|_| rng.range_f64(0.0, 1.0)).collect();
            let weights: Vec<f64> = (0..n_weights).map(|_| rng.range_f64(-1.5, 1.5)).collect();
            qnn_params(&features, &weights)
        })
        .collect();

    // Arrival order: each wide sampled one-shot immediately followed by a
    // burst of small ones, so under FIFO the smalls queue *behind* the
    // large job — the co-scheduling pattern whose tail latency the
    // pipeline is supposed to fix by offloading the large job's sampling
    // to the readback stage.
    enum Shot {
        Small(usize),
        Large(usize),
    }
    let stride = (smalls / larges.max(1)).max(1);
    let mut order: Vec<Shot> = Vec::with_capacity(smalls + larges);
    {
        let mut s = 0;
        for l in 0..larges {
            order.push(Shot::Large(l));
            for _ in 0..stride {
                if s < smalls {
                    order.push(Shot::Small(s));
                    s += 1;
                }
            }
        }
        while s < smalls {
            order.push(Shot::Small(s));
            s += 1;
        }
    }

    fn output_checksum(out: &JobOutput) -> f64 {
        match out {
            JobOutput::OneShot {
                summary, samples, ..
            } => {
                let mut c = summary.gates as f64;
                if let Some(hist) = samples {
                    for (&bits, &count) in hist {
                        c += bits as f64 * count as f64;
                    }
                }
                c
            }
            JobOutput::Sweep { value, .. } => value.unwrap_or(0.0),
        }
    }

    struct ModelOutcome {
        wall: Duration,
        small_lat_ms: Vec<f64>,
        checksum: f64,
        metrics: MetricsSnapshot,
    }

    let start_engine = |model: ExecutionModel| -> Result<
        (
            Engine,
            sv_sim::engine::TemplateId,
            sv_sim::engine::TemplateId,
        ),
        Box<dyn std::error::Error>,
    > {
        let engine = Engine::start(
            EngineConfig::default()
                .with_workers(workers)
                .with_max_batch(max_batch)
                .with_model(model)
                .with_stage_capacity(stage_capacity)
                .with_sched(sched)
                .with_alloc(alloc),
        );
        let qaoa_id = engine.register_template_fused("qaoa_maxcut_n8", &qaoa, fuse)?;
        let qnn_id = engine.register_template_fused("qnn_grid_n8", &qnn, fuse)?;
        Ok((engine, qaoa_id, qnn_id))
    };

    // One replay of the request stream against a running engine; returns
    // (wall, per-small latencies in submission order, checksum).
    let run_rep = |engine: &Engine,
                   qaoa_id: sv_sim::engine::TemplateId,
                   qnn_id: sv_sim::engine::TemplateId|
     -> Result<(Duration, Vec<f64>, f64), Box<dyn std::error::Error>> {
        {
            let t0 = Instant::now();
            let mut handles = Vec::with_capacity(order.len() + sweeps);
            for shot in &order {
                let (circuit, i, small) = match shot {
                    Shot::Small(i) => (Arc::clone(&small_circuit), *i, true),
                    Shot::Large(i) => (
                        Arc::clone(&large_circuits[*i % large_circuits.len()]),
                        *i,
                        false,
                    ),
                };
                let mut config = SimConfig::single_device().with_fusion(fuse);
                config.seed = seed ^ ((i as u64) << 1) ^ u64::from(small);
                let request = JobRequest::new(JobSpec::OneShot {
                    circuit,
                    config,
                    shots: if small { 0 } else { shots },
                    return_state: false,
                });
                let handle = submit_flow_controlled(engine, &request)?;
                handles.push((Instant::now(), handle, small));
            }
            let mut qa = qaoa_points.iter();
            let mut qn = qnn_points.iter();
            loop {
                let a = qa.next();
                let b = qn.next();
                if a.is_none() && b.is_none() {
                    break;
                }
                if let Some(p) = a {
                    let request = JobRequest::new(JobSpec::Sweep {
                        template: qaoa_id,
                        params: p.clone(),
                        returning: SweepReturn::ExpZ(qaoa_mask),
                    })
                    .with_priority(Priority::Low);
                    let handle = submit_flow_controlled(engine, &request)?;
                    handles.push((Instant::now(), handle, false));
                }
                if let Some(p) = b {
                    let request = JobRequest::new(JobSpec::Sweep {
                        template: qnn_id,
                        params: p.clone(),
                        returning: SweepReturn::ExpZ(qnn_readout_mask),
                    })
                    .with_priority(Priority::Low);
                    let handle = submit_flow_controlled(engine, &request)?;
                    handles.push((Instant::now(), handle, false));
                }
            }
            // Collect the smalls first (their completion is what's timed;
            // blocking on a not-yet-done small never delays the engine),
            // then the rest; checksum in submission order so the f64 sum
            // is order-stable across models.
            let mut outputs: Vec<Option<JobOutput>> = Vec::with_capacity(handles.len());
            outputs.resize_with(handles.len(), || None);
            let mut lats = Vec::with_capacity(smalls);
            for (i, (submitted, handle, small)) in handles.iter().enumerate() {
                if *small {
                    outputs[i] = Some(handle.wait().map_err(|e| e.to_string())?);
                    lats.push(submitted.elapsed().as_secs_f64() * 1e3);
                }
            }
            for (i, (_, handle, small)) in handles.iter().enumerate() {
                if !*small {
                    outputs[i] = Some(handle.wait().map_err(|e| e.to_string())?);
                }
            }
            let wall = t0.elapsed();
            let checksum = outputs.iter().flatten().map(output_checksum).sum();
            Ok((wall, lats, checksum))
        }
    };

    let total_jobs = smalls + larges + qaoa_points.len() + qnn_points.len();
    println!(
        "serve-bench --compare: {smalls} small (n={SMALL_QUBITS}) + {larges} large (n={LARGE_QUBITS}, {shots} shots) one-shots + {} sweep points, {workers} workers, best of {reps} reps",
        qaoa_points.len() + qnn_points.len(),
    );

    // Interleave repetitions legacy/pipeline/legacy/pipeline so host noise
    // (this may be a shared single-CPU container) lands on both models
    // evenly rather than biasing whichever ran last; keep each model's
    // best repetition.
    let (legacy_engine, lqaoa, lqnn) = start_engine(ExecutionModel::Legacy)?;
    let (pipeline_engine, pqaoa, pqnn) = start_engine(ExecutionModel::Pipeline)?;
    let mut best = [
        (Duration::MAX, Vec::new(), 0.0f64),
        (Duration::MAX, Vec::new(), 0.0f64),
    ];
    for _ in 0..reps {
        for (slot, rep) in [
            run_rep(&legacy_engine, lqaoa, lqnn)?,
            run_rep(&pipeline_engine, pqaoa, pqnn)?,
        ]
        .into_iter()
        .enumerate()
        {
            best[slot].2 = rep.2;
            if rep.0 < best[slot].0 {
                best[slot] = rep;
            }
        }
    }
    let outcome = |(wall, mut lat, checksum): (Duration, Vec<f64>, f64),
                   metrics: MetricsSnapshot| {
        lat.sort_by(f64::total_cmp);
        ModelOutcome {
            wall,
            small_lat_ms: lat,
            checksum,
            metrics,
        }
    };
    let [legacy_best, pipeline_best] = best;
    let legacy = outcome(legacy_best, legacy_engine.shutdown());
    let pipeline = outcome(pipeline_best, pipeline_engine.shutdown());

    let jobs_per_s = |o: &ModelOutcome| total_jobs as f64 / o.wall.as_secs_f64();
    let ratio = jobs_per_s(&pipeline) / jobs_per_s(&legacy);
    let p50 = |o: &ModelOutcome| percentile(&o.small_lat_ms, 0.50);
    let p99 = |o: &ModelOutcome| percentile(&o.small_lat_ms, 0.99);
    let p99_ratio = p99(&pipeline) / p99(&legacy).max(f64::MIN_POSITIVE);
    println!();
    for (name, o) in [("legacy", &legacy), ("pipeline", &pipeline)] {
        println!(
            "{name:>9}: {:>9.3} ms wall  {:>8.1} jobs/s  small p50 {:>8.3} ms  p99 {:>8.3} ms  (checksum {:+.9})",
            o.wall.as_secs_f64() * 1e3,
            jobs_per_s(o),
            p50(o),
            p99(o),
            o.checksum,
        );
    }
    println!("throughput ratio (pipeline/legacy): {ratio:.3}x   small p99 ratio: {p99_ratio:.3}x");
    if args.iter().any(|a| a == "--verbose") {
        for (name, o) in [("legacy", &legacy), ("pipeline", &pipeline)] {
            println!("\n-- {name} engine metrics --\n{}", o.metrics);
        }
    }

    let mut json = String::new();
    writeln!(json, "{{")?;
    writeln!(json, "  \"bench\": \"pipeline_serve\",")?;
    writeln!(json, "  \"seed\": {seed},")?;
    writeln!(json, "  \"workers\": {workers},")?;
    writeln!(json, "  \"reps\": {reps},")?;
    writeln!(
        json,
        "  \"mix\": {{\"small_one_shots\": {smalls}, \"small_qubits\": {SMALL_QUBITS}, \
         \"large_one_shots\": {larges}, \"large_qubits\": {LARGE_QUBITS}, \
         \"large_shots\": {shots}, \"sweep_points\": {}}},",
        qaoa_points.len() + qnn_points.len(),
    )?;
    for (name, o) in [("legacy", &legacy), ("pipeline", &pipeline)] {
        writeln!(
            json,
            "  \"{name}\": {{\"wall_ms\": {:.3}, \"jobs_per_s\": {:.1}, \
             \"small_p50_ms\": {:.3}, \"small_p99_ms\": {:.3}, \"checksum\": {:.9},",
            o.wall.as_secs_f64() * 1e3,
            jobs_per_s(o),
            p50(o),
            p99(o),
            o.checksum,
        )?;
        writeln!(
            json,
            "    \"mem_high_water_bytes\": {},",
            o.metrics.mem_high_water_bytes
        )?;
        writeln!(json, "    \"stages\": [")?;
        for (i, s) in o.metrics.stages.iter().enumerate() {
            writeln!(
                json,
                "      {{\"name\": \"{}\", \"high_water\": {}, \"pushed\": {}, \
                 \"popped\": {}, \"rejected\": {}, \"blocked\": {}}}{}",
                s.name,
                s.high_water,
                s.pushed,
                s.popped,
                s.rejected,
                s.blocked,
                if i + 1 < o.metrics.stages.len() {
                    ","
                } else {
                    ""
                },
            )?;
        }
        writeln!(json, "    ]")?;
        writeln!(json, "  }},")?;
    }
    writeln!(json, "  \"throughput_ratio\": {ratio:.3},")?;
    writeln!(json, "  \"small_p99_ratio\": {p99_ratio:.3},")?;
    writeln!(
        json,
        "  \"checksums_match\": {}",
        legacy.checksum.to_bits() == pipeline.checksum.to_bits(),
    )?;
    writeln!(json, "}}")?;
    std::fs::write(out_path, &json)?;
    println!("wrote {out_path}");

    let races = legacy.metrics.races_detected + pipeline.metrics.races_detected;
    if races > 0 {
        return Err(format!("{races} SHMEM protocol races detected").into());
    }
    if legacy.checksum.to_bits() != pipeline.checksum.to_bits() {
        return Err(format!(
            "checksum mismatch: legacy {:?} vs pipeline {:?}",
            legacy.checksum, pipeline.checksum
        )
        .into());
    }
    if let Some(min_ratio) = assert_min_ratio {
        if ratio < min_ratio {
            return Err(format!(
                "pipeline throughput ratio {ratio:.3} below required minimum {min_ratio}"
            )
            .into());
        }
    }
    if let Some(max_p99) = assert_max_p99_ratio {
        if p99_ratio > max_p99 {
            return Err(format!(
                "small-job p99 ratio {p99_ratio:.3} above required maximum {max_p99}"
            )
            .into());
        }
    }
    Ok(())
}

/// Run a serve-bench-style mix under a seeded fault schedule and prove
/// recovery: every job killed by an injected fault must be retried (from
/// its last checkpoint where one exists) and finish **bit-identical** to a
/// fault-free reference run. Exits nonzero on any checksum mismatch.
fn cmd_fault_bench(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use std::sync::Arc;
    use std::time::Duration;
    use sv_sim::core::state_checksum;
    use sv_sim::engine::{
        DegradePolicy, Engine, EngineConfig, JobOutput, JobRequest, JobSpec, RetryPolicy,
        SweepReturn,
    };
    use sv_sim::shmem::{FaultAction, FaultPlan};
    use sv_sim::types::{PeOp, SvRng};
    use sv_sim::vqa::{qaoa_params, qaoa_template};
    use sv_sim::workloads::{algos::cat_state, states::w_state};

    let fault_kind = flag_value(args, "--fault").unwrap_or("kill-pe");
    let pes: usize = flag_value(args, "--pes").map_or(Ok(4), str::parse)?;
    let every: u32 = flag_value(args, "--every").map_or(Ok(2), str::parse)?;
    let seed: u64 = flag_value(args, "--seed").map_or(Ok(0xFA17), str::parse)?;
    let one_shots: usize = flag_value(args, "--one-shots").map_or(Ok(4), str::parse)?;
    let sweeps: usize = flag_value(args, "--sweeps").map_or(Ok(8), str::parse)?;
    let attempts: u32 = flag_value(args, "--attempts").map_or(Ok(4), str::parse)?;
    let process_pes = match flag_value(args, "--pe-mode") {
        None | Some("thread") => false,
        Some("process") => true,
        Some(other) => return Err(format!("unknown PE mode `{other}` (thread|process)").into()),
    };
    let chaos = args.iter().any(|a| a == "--chaos");
    let recovery = flag_value(args, "--recovery").unwrap_or("retry");
    let hang_ms: u32 = flag_value(args, "--hang-ms").map_or(Ok(1500), str::parse)?;
    let degrade = match recovery {
        "retry" => DegradePolicy::None,
        "respawn" => DegradePolicy::Respawn { max_respawns: 2 },
        "degrade" => DegradePolicy::HalvePes {
            failures_per_rung: 1,
            min_pes: 1,
        },
        other => return Err(format!("unknown recovery `{other}` (retry|respawn|degrade)").into()),
    };

    // The fault schedule: `exec` targets the engine worker itself (rank 0,
    // since the bench pins one worker); `torn-checkpoint` targets the
    // host-side persistence points of the job's checkpoint store; the SHMEM
    // kinds target whichever PE reaches a seeded trigger count first inside
    // the scale-out launch, so short circuits still hit the fault.
    let (op, action) = match fault_kind {
        "kill-pe" => (PeOp::Put, FaultAction::Kill),
        "drop-put" => (PeOp::Put, FaultAction::Drop),
        "poison-barrier" => (PeOp::Barrier, FaultAction::Poison),
        "hang-pe" => (PeOp::Put, FaultAction::Hang),
        "torn-checkpoint" => (PeOp::Checkpoint, FaultAction::TornCheckpoint),
        "exec" => (PeOp::Exec, FaultAction::Kill),
        other => return Err(format!("unknown fault kind `{other}`").into()),
    };
    // `--chaos` overrides the fixed kind per one-shot with a seeded pick
    // from the self-healing trio: PE kill, PE hang, torn checkpoint write.
    let job_fault = |i: usize| -> (PeOp, FaultAction) {
        if !chaos {
            return (op, action);
        }
        let mut rng = SvRng::seed_from_u64(
            seed ^ 0x000C_4A05 ^ (i as u64).wrapping_mul(0x517C_C1B7_2722_0A95),
        );
        match (rng.next_f64() * 3.0) as usize {
            0 => (PeOp::Put, FaultAction::Kill),
            1 => (PeOp::Put, FaultAction::Hang),
            _ => (PeOp::Checkpoint, FaultAction::TornCheckpoint),
        }
    };
    let make_plan = |job_seed: u64, op: PeOp, action: FaultAction| -> Arc<FaultPlan> {
        if op == PeOp::Exec {
            return Arc::new(FaultPlan::new().with(0, PeOp::Exec, 1, action));
        }
        let mut rng = SvRng::seed_from_u64(job_seed);
        if op == PeOp::Checkpoint {
            // Tear a mid-run generation so at least one good one precedes
            // it — the recovery path the store's fallback exists for.
            let at = 2 + (rng.next_f64() * 2.0) as u64;
            return Arc::new(FaultPlan::new().with(0, PeOp::Checkpoint, at, action));
        }
        let at = 1 + (rng.next_f64() * 8.0) as u64;
        Arc::new(FaultPlan::new().with(None, op, at, action))
    };
    let retry = RetryPolicy::attempts(attempts.max(2))
        .with_base_backoff(Duration::from_millis(1))
        .with_max_backoff(Duration::from_millis(8))
        .with_jitter_seed(seed);

    // --- The mix ------------------------------------------------------------
    // One-shots arrive as OpenQASM text and execute scale-out with periodic
    // checkpoints; sweeps are QAOA points on a registered template.
    let qasm_sources = [
        sv_sim::qasm::to_qasm(&cat_state(8)?)?,
        sv_sim::qasm::to_qasm(&w_state(8)?)?,
    ];
    let one_shot_jobs: Vec<(sv_sim::ir::Circuit, sv_sim::core::SimConfig)> = (0..one_shots)
        .map(|i| {
            let circuit = parse_circuit(&qasm_sources[i % qasm_sources.len()])?;
            // Thread PEs run under the race detector: recovery must be both
            // bit-identical AND protocol-clean (races_detected fails the
            // bench below). Process PEs cannot host the in-process detector;
            // they instead prove recovery across real fork/SIGKILL deaths.
            let mut config = sv_sim::core::SimConfig::scale_out(pes)
                .with_seed(seed ^ i as u64)
                .with_checkpoint_every(every)
                .with_hang_deadline_ms(hang_ms);
            if process_pes {
                config = config.with_process_backend();
            } else {
                config = config.with_race_detection();
            }
            Ok::<_, Box<dyn std::error::Error>>((circuit, config))
        })
        .collect::<Result<_, _>>()?;

    let graph = sv_sim::workloads::qaoa::Graph::random(8, 0.4, seed);
    let qaoa = qaoa_template(&graph, 2)?;
    let qaoa_mask = (1u64 << 8) - 1;
    let mut rng = SvRng::seed_from_u64(seed ^ 0x0051_eeb5);
    let sweep_points: Vec<Vec<f64>> = (0..sweeps)
        .map(|_| {
            let gammas = [rng.range_f64(-2.0, 2.0), rng.range_f64(-2.0, 2.0)];
            let betas = [rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)];
            qaoa_params(&gammas, &betas)
        })
        .collect();

    // --- Fault-free reference ----------------------------------------------
    let mut ref_checksums = Vec::with_capacity(one_shots);
    for (circuit, config) in &one_shot_jobs {
        let mut sim = Simulator::new(circuit.n_qubits(), *config)?;
        sim.run(circuit)?;
        ref_checksums.push(state_checksum(sim.state()));
    }
    let mut compiled = qaoa.compile()?;
    let ref_values: Vec<f64> = sweep_points
        .iter()
        .map(|p| {
            let state = compiled.run(p)?;
            Ok::<_, Box<dyn std::error::Error>>(measure::expval_z_mask(&state, qaoa_mask))
        })
        .collect::<Result<_, _>>()?;

    // --- Faulted run --------------------------------------------------------
    // Injected PE deaths are panics by design (the launcher converts them
    // into typed per-PE errors); silence their default backtrace spew so
    // the bench output stays readable. Real panics still print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info
            .payload()
            .downcast_ref::<sv_sim::shmem::PeFailure>()
            .is_none()
        {
            default_hook(info);
        }
    }));
    // One worker: execution order (and the Exec fault's PE rank) is fixed.
    let engine = Engine::start(EngineConfig::default().with_workers(1));
    let qaoa_id = engine.register_template("qaoa_maxcut_n8", &qaoa)?;
    let mut plans = Vec::new();

    // Every one-shot persists its checkpoints into a crash-consistent
    // per-job store — the surface torn-write faults tear and lost
    // in-memory checkpoints recover from.
    let ckpt_root = std::env::temp_dir().join(format!("svsim-fault-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_root);

    let one_shot_handles: Vec<_> = one_shot_jobs
        .iter()
        .enumerate()
        .map(|(i, (circuit, config))| {
            let (job_op, job_action) = job_fault(i);
            let plan = make_plan(
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9),
                job_op,
                job_action,
            );
            plans.push(Arc::clone(&plan));
            engine
                .submit(
                    JobRequest::new(JobSpec::OneShot {
                        circuit: Arc::new(circuit.clone()),
                        config: *config,
                        shots: 0,
                        return_state: true,
                    })
                    .with_retry(retry)
                    .with_degrade(degrade)
                    .with_checkpoint_dir(ckpt_root.join(format!("job-{i}")))
                    .with_fault_plan(plan),
                )
                .map_err(|e| e.to_string())
        })
        .collect::<Result<_, _>>()?;
    let sweep_handles: Vec<_> = sweep_points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut request = JobRequest::new(JobSpec::Sweep {
                template: qaoa_id,
                params: p.clone(),
                returning: SweepReturn::ExpZ(qaoa_mask),
            })
            .with_retry(retry);
            // SHMEM-level faults have no trigger inside a single-device
            // template sweep; Exec faults target every other sweep point.
            if !chaos && op == PeOp::Exec && i % 2 == 0 {
                let plan = make_plan(seed ^ (i as u64) << 7, op, action);
                plans.push(Arc::clone(&plan));
                request = request.with_fault_plan(plan);
            }
            engine.submit(request).map_err(|e| e.to_string())
        })
        .collect::<Result<_, _>>()?;

    let mut mismatches = 0usize;
    for (i, h) in one_shot_handles.iter().enumerate() {
        let JobOutput::OneShot { state, .. } = h.wait().map_err(|e| e.to_string())? else {
            unreachable!("one-shot job");
        };
        let got = state_checksum(&state.expect("state requested"));
        if got != ref_checksums[i] {
            eprintln!(
                "one-shot {i}: checksum {got:#018x} != reference {:#018x}",
                ref_checksums[i]
            );
            mismatches += 1;
        }
    }
    for (i, h) in sweep_handles.iter().enumerate() {
        let JobOutput::Sweep { value, .. } = h.wait().map_err(|e| e.to_string())? else {
            unreachable!("sweep job");
        };
        let got = value.expect("ExpZ requested");
        if got.to_bits() != ref_values[i].to_bits() {
            eprintln!("sweep {i}: value {got:?} != reference {:?}", ref_values[i]);
            mismatches += 1;
        }
    }
    let metrics = engine.shutdown();

    let _ = std::fs::remove_dir_all(&ckpt_root);
    let scheduled = plans.len();
    let fired: usize = plans.iter().map(|p| p.len() - p.armed_remaining()).sum();
    println!(
        "fault-bench: fault={} recovery={recovery} pes={pes} pe-mode={} every={every} \
         seed={seed:#x} ({one_shots} one-shots, {sweeps} sweep points)",
        if chaos { "chaos" } else { fault_kind },
        if process_pes { "process" } else { "thread" },
    );
    println!("faults: {fired}/{scheduled} scheduled faults fired");
    println!("{metrics}");
    let total = one_shots + sweeps;
    if metrics.races_detected > 0 {
        return Err(format!(
            "{} SHMEM protocol races detected during recovery",
            metrics.races_detected
        )
        .into());
    }
    if mismatches > 0 {
        return Err(
            format!("{mismatches}/{total} jobs diverged from the fault-free reference").into(),
        );
    }
    println!("OK: all {total} job checksums match the fault-free reference");
    Ok(())
}

/// Static (and optionally dynamic) race analysis of the one-sided SHMEM
/// access protocol. `--suite` analyzes every Table 4 workload instead of a
/// QASM file; `--detect` additionally executes each plan under the runtime
/// race detector and cross-checks the verdicts; `--merge-epochs I`
/// deliberately removes the barrier after epoch `I` to demonstrate conflict
/// detection. Exits nonzero on any conflict, dynamic race, or disagreement.
/// Benchmark naive vs remapped scale-out over the Table 4 suite: per
/// workload, run both paths, verify each is bit-identical to the
/// single-device reference, and emit machine-readable results (predicted
/// remote amplitude ops, measured remote bytes, wall time) as JSON.
/// `--assert-max-ratio R` turns the report into a CI gate: every deep
/// circuit (>= `--min-gates` gates, default 100) whose naive plan moves
/// remote data must see its remapped remote bytes at most `R` times naive.
fn cmd_remap_bench(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use std::fmt::Write as _;
    use std::time::Instant;

    let pes: usize = flag_value(args, "--pes").map_or(Ok(8), str::parse)?;
    let seed: u64 = flag_value(args, "--seed").map_or(Ok(0xC0FFEE), str::parse)?;
    let max_qubits: u32 = flag_value(args, "--max-qubits").map_or(Ok(u32::MAX), str::parse)?;
    let min_gates: usize = flag_value(args, "--min-gates").map_or(Ok(100), str::parse)?;
    let out_path = flag_value(args, "--out").unwrap_or("BENCH_5.json");
    let assert_ratio: Option<f64> = flag_value(args, "--assert-max-ratio")
        .map(str::parse)
        .transpose()?;

    struct PathResult {
        remote_amp_ops: u64,
        remote_bytes: u64,
        wall_ms: f64,
    }
    struct Row {
        name: String,
        n_qubits: u32,
        gates: usize,
        swaps: usize,
        bit_identical: bool,
        naive: PathResult,
        remapped: PathResult,
    }
    struct PathRun {
        result: PathResult,
        checksum: u64,
        cbits: u64,
        gates: usize,
        swaps: usize,
    }

    let run_path = |circuit: &sv_sim::ir::Circuit,
                    config: SimConfig|
     -> Result<PathRun, Box<dyn std::error::Error>> {
        let mut sim = Simulator::new(circuit.n_qubits(), config)?;
        let predicted = sim.predict_traffic(circuit);
        let t0 = Instant::now();
        let summary = sim.run(circuit)?;
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let total = summary.total_traffic();
        Ok(PathRun {
            result: PathResult {
                remote_amp_ops: predicted.remote_amp_ops,
                remote_bytes: total.remote_get_bytes + total.remote_put_bytes,
                wall_ms,
            },
            checksum: sim.state_checksum(),
            cbits: summary.cbits,
            gates: summary.gates,
            swaps: summary.remap_swaps,
        })
    };

    let mut rows: Vec<Row> = Vec::new();
    for spec in sv_sim::workloads::medium_suite()
        .into_iter()
        .chain(sv_sim::workloads::large_suite())
    {
        let circuit = spec.circuit()?;
        if circuit.n_qubits() > max_qubits {
            continue;
        }
        let mut reference = Simulator::new(
            circuit.n_qubits(),
            SimConfig::single_device().with_seed(seed),
        )?;
        let ref_summary = reference.run(&circuit)?;
        let ref_checksum = reference.state_checksum();

        let base = SimConfig::scale_out(pes).with_seed(seed);
        let nv = run_path(&circuit, base)?;
        let rm = run_path(&circuit, base.with_remap())?;
        let (naive, naive_sum, naive_cbits, gates) = (nv.result, nv.checksum, nv.cbits, nv.gates);
        let (remapped, remap_sum, remap_cbits, swaps) =
            (rm.result, rm.checksum, rm.cbits, rm.swaps);
        let bit_identical = naive_sum == ref_checksum
            && remap_sum == ref_checksum
            && naive_cbits == ref_summary.cbits
            && remap_cbits == ref_summary.cbits;
        let verdict = if bit_identical {
            "ok".to_string()
        } else {
            // Name the failing comparisons so a divergence is actionable.
            let mut parts = Vec::new();
            if naive_sum != ref_checksum {
                parts.push("naive-state");
            }
            if remap_sum != ref_checksum {
                parts.push("remap-state");
            }
            if naive_cbits != ref_summary.cbits {
                parts.push("naive-cbits");
            }
            if remap_cbits != ref_summary.cbits {
                parts.push("remap-cbits");
            }
            format!("DIVERGED [{}]", parts.join(" "))
        };
        println!(
            "{:<16} n={:<2} gates={:<5} swaps={:<4} remote_bytes {:>12} -> {:>10} ({:})  {}",
            spec.name,
            circuit.n_qubits(),
            gates,
            swaps,
            naive.remote_bytes,
            remapped.remote_bytes,
            if naive.remote_bytes > 0 {
                format!(
                    "{:.1}%",
                    100.0 * remapped.remote_bytes as f64 / naive.remote_bytes as f64
                )
            } else {
                "all-local".to_string()
            },
            verdict,
        );
        rows.push(Row {
            name: spec.name.to_string(),
            n_qubits: circuit.n_qubits(),
            gates,
            swaps,
            bit_identical,
            naive,
            remapped,
        });
    }

    let mut json = String::new();
    writeln!(json, "{{")?;
    writeln!(json, "  \"bench\": \"remap\",")?;
    writeln!(json, "  \"pes\": {pes},")?;
    writeln!(json, "  \"seed\": {seed},")?;
    writeln!(json, "  \"min_gates_deep\": {min_gates},")?;
    writeln!(json, "  \"workloads\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"n_qubits\": {}, \"gates\": {}, \"deep\": {}, \
             \"bit_identical\": {}, \"remap_swaps\": {}, \
             \"naive\": {{\"remote_amp_ops\": {}, \"remote_bytes\": {}, \"wall_ms\": {:.3}}}, \
             \"remapped\": {{\"remote_amp_ops\": {}, \"remote_bytes\": {}, \"wall_ms\": {:.3}}}}}{comma}",
            r.name,
            r.n_qubits,
            r.gates,
            r.gates >= min_gates,
            r.bit_identical,
            r.swaps,
            r.naive.remote_amp_ops,
            r.naive.remote_bytes,
            r.naive.wall_ms,
            r.remapped.remote_amp_ops,
            r.remapped.remote_bytes,
            r.remapped.wall_ms,
        )?;
    }
    writeln!(json, "  ]")?;
    writeln!(json, "}}")?;
    std::fs::write(out_path, &json)?;
    println!("wrote {out_path} ({} workloads at {pes} PEs)", rows.len());

    if let Some(diverged) = rows.iter().find(|r| !r.bit_identical) {
        return Err(format!(
            "{} diverged from the single-device reference",
            diverged.name
        )
        .into());
    }
    if let Some(max_ratio) = assert_ratio {
        let mut offenders = Vec::new();
        for r in &rows {
            if r.gates < min_gates || r.naive.remote_bytes == 0 {
                continue;
            }
            let ratio = r.remapped.remote_bytes as f64 / r.naive.remote_bytes as f64;
            if ratio > max_ratio {
                offenders.push(format!("{} ({ratio:.2} > {max_ratio})", r.name));
            }
        }
        if !offenders.is_empty() {
            return Err(format!(
                "remapped remote traffic exceeds {max_ratio}x naive on deep circuits: {}",
                offenders.join(", ")
            )
            .into());
        }
        println!("OK: remapped remote traffic <= {max_ratio}x naive on every deep circuit");
    }
    Ok(())
}

/// `fuse-bench`: gate-fusion efficacy over the deep Table 4 workloads.
///
/// For every suite circuit deep enough to be bandwidth-bound
/// (`--min-gates`), compiles an unfused and a fused plan, reports the
/// collapse in amplitude passes (gates-per-pass) and wall-clock, and
/// checks the fused run bit-identical to the unfused one. With
/// `--assert-min-gates-per-pass R` the mean gates-per-pass over the deep
/// set becomes a hard floor (unfused plans are exactly 1.0 by
/// construction, so R = 2 asserts a >=2x pass collapse).
fn cmd_fuse_bench(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use std::fmt::Write as _;
    use std::time::Instant;
    use sv_sim::core::CompiledPlan;

    let window: u8 = flag_value(args, "--window").map_or(Ok(3), str::parse)?;
    let seed: u64 = flag_value(args, "--seed").map_or(Ok(0xF05E), str::parse)?;
    let reps: usize = flag_value(args, "--reps").map_or(Ok(3), str::parse)?.max(1);
    let min_gates: usize = flag_value(args, "--min-gates").map_or(Ok(300), str::parse)?;
    let max_qubits: u32 = flag_value(args, "--max-qubits").map_or(Ok(u32::MAX), str::parse)?;
    let out_path = flag_value(args, "--out").unwrap_or("BENCH_10.json");
    let assert_gpp: Option<f64> = flag_value(args, "--assert-min-gates-per-pass")
        .map(str::parse)
        .transpose()?;
    if window == 0 {
        return Err("--window must be 1..=3".into());
    }

    struct Row {
        name: String,
        n_qubits: u32,
        source_kernels: usize,
        passes_unfused: usize,
        passes_fused: usize,
        gates_per_pass: f64,
        wall_unfused_ms: f64,
        wall_fused_ms: f64,
        bit_identical: bool,
    }

    // Best-of-reps wall clock: fusion's win is fewer passes over the
    // state, so the minimum is the least-noisy estimator on shared hosts.
    let timed_run = |circuit: &sv_sim::ir::Circuit,
                     config: SimConfig|
     -> Result<(f64, u64, u64), Box<dyn std::error::Error>> {
        let mut best = f64::MAX;
        let mut checksum = 0u64;
        let mut cbits = 0u64;
        for _ in 0..reps {
            let mut sim = Simulator::new(circuit.n_qubits(), config)?;
            let t0 = Instant::now();
            let summary = sim.run(circuit)?;
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            checksum = sim.state_checksum();
            cbits = summary.cbits;
        }
        Ok((best, checksum, cbits))
    };

    let mut rows: Vec<Row> = Vec::new();
    for spec in sv_sim::workloads::medium_suite()
        .into_iter()
        .chain(sv_sim::workloads::large_suite())
    {
        let circuit = spec.circuit()?;
        if circuit.n_qubits() > max_qubits || circuit.stats().gates < min_gates {
            continue;
        }
        let n = circuit.n_qubits();
        let base = SimConfig::single_device().with_seed(seed);
        let fused_cfg = base.with_fusion(window);
        let unfused_plan = CompiledPlan::compile(&circuit, n, &base);
        let fused_plan = CompiledPlan::compile(&circuit, n, &fused_cfg);
        let (wall_unfused_ms, ref_sum, ref_cbits) = timed_run(&circuit, base)?;
        let (wall_fused_ms, fused_sum, fused_cbits) = timed_run(&circuit, fused_cfg)?;
        let gates_per_pass =
            fused_plan.n_source_kernels() as f64 / fused_plan.n_kernels().max(1) as f64;
        let bit_identical = fused_sum == ref_sum && fused_cbits == ref_cbits;
        println!(
            "{:<16} n={:<2} kernels={:<5} passes {:>5} -> {:<5} ({gates_per_pass:.2} gates/pass)  \
             wall {wall_unfused_ms:>8.3} -> {wall_fused_ms:>8.3} ms  {}",
            spec.name,
            n,
            fused_plan.n_source_kernels(),
            unfused_plan.n_kernels(),
            fused_plan.n_kernels(),
            if bit_identical { "ok" } else { "DIVERGED" },
        );
        rows.push(Row {
            name: spec.name.to_string(),
            n_qubits: n,
            source_kernels: fused_plan.n_source_kernels(),
            passes_unfused: unfused_plan.n_kernels(),
            passes_fused: fused_plan.n_kernels(),
            gates_per_pass,
            wall_unfused_ms,
            wall_fused_ms,
            bit_identical,
        });
    }
    if rows.is_empty() {
        return Err("no workload passed the --min-gates/--max-qubits filters".into());
    }
    let mean_gpp = rows.iter().map(|r| r.gates_per_pass).sum::<f64>() / rows.len() as f64;

    let mut json = String::new();
    writeln!(json, "{{")?;
    writeln!(json, "  \"bench\": \"fuse\",")?;
    writeln!(json, "  \"window\": {window},")?;
    writeln!(json, "  \"seed\": {seed},")?;
    writeln!(json, "  \"reps\": {reps},")?;
    writeln!(json, "  \"min_gates\": {min_gates},")?;
    writeln!(json, "  \"mean_gates_per_pass\": {mean_gpp:.3},")?;
    writeln!(json, "  \"workloads\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"n_qubits\": {}, \"source_kernels\": {}, \
             \"passes_unfused\": {}, \"passes_fused\": {}, \"gates_per_pass\": {:.3}, \
             \"wall_unfused_ms\": {:.3}, \"wall_fused_ms\": {:.3}, \
             \"bit_identical\": {}}}{comma}",
            r.name,
            r.n_qubits,
            r.source_kernels,
            r.passes_unfused,
            r.passes_fused,
            r.gates_per_pass,
            r.wall_unfused_ms,
            r.wall_fused_ms,
            r.bit_identical,
        )?;
    }
    writeln!(json, "  ]")?;
    writeln!(json, "}}")?;
    std::fs::write(out_path, &json)?;
    println!(
        "wrote {out_path} ({} deep workloads, window {window}, mean {mean_gpp:.2} gates/pass)",
        rows.len()
    );

    if let Some(diverged) = rows.iter().find(|r| !r.bit_identical) {
        return Err(format!(
            "{} fused run diverged from the unfused reference",
            diverged.name
        )
        .into());
    }
    if let Some(min_gpp) = assert_gpp {
        if mean_gpp < min_gpp {
            return Err(format!(
                "mean gates-per-pass {mean_gpp:.3} below required minimum {min_gpp}"
            )
            .into());
        }
        println!("OK: mean gates-per-pass {mean_gpp:.2} >= {min_gpp}");
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use sv_sim::analyzer::{
        analyze_circuit, analyze_circuit_remapped, check_plan, cross_validate,
        cross_validate_remapped, CommPlan, Verdict,
    };

    let pes: u64 = flag_value(args, "--pes").map_or(Ok(8), str::parse)?;
    let detect = args.iter().any(|a| a == "--detect");
    let remap = args.iter().any(|a| a == "--remap");
    let fuse: u8 = flag_value(args, "--fuse").map_or(Ok(0), str::parse)?;
    if fuse > 0 && (remap || detect) {
        return Err("--fuse models the fused kernel schedule statically; \
                    combine it with neither --remap nor --detect"
            .into());
    }
    let seed: u64 = flag_value(args, "--seed").map_or(Ok(0xACE5), str::parse)?;
    let merge: Option<usize> = flag_value(args, "--merge-epochs")
        .map(str::parse)
        .transpose()?;
    let max_qubits: u32 = flag_value(args, "--max-qubits").map_or(Ok(u32::MAX), str::parse)?;

    let mut targets: Vec<(String, sv_sim::ir::Circuit)> = Vec::new();
    if args.iter().any(|a| a == "--suite") {
        for spec in sv_sim::workloads::medium_suite()
            .into_iter()
            .chain(sv_sim::workloads::large_suite())
        {
            let c = spec.circuit()?;
            if c.n_qubits() <= max_qubits {
                targets.push((spec.name.to_string(), c));
            }
        }
    } else {
        let path = args
            .first()
            .filter(|a| !a.starts_with("--"))
            .ok_or("analyze needs <file.qasm> or --suite")?;
        targets.push((path.clone(), load(path)?));
    }

    let mut bad = 0usize;
    for (name, circuit) in &targets {
        let report = if let Some(i) = merge {
            if remap {
                return Err("--merge-epochs and --remap are mutually exclusive".into());
            }
            let mut plan = CommPlan::from_circuit(circuit);
            plan.merge_epochs(i)?;
            check_plan(&plan, pes)?
        } else if remap {
            analyze_circuit_remapped(circuit, pes)?
        } else if fuse > 0 {
            check_plan(&CommPlan::from_circuit_fused(circuit, fuse), pes)?
        } else {
            analyze_circuit(circuit, pes)?
        };
        print!("{name}: {report}");
        if report.verdict() != Verdict::ProvenSafe {
            bad += 1;
        }
        if detect {
            if merge.is_some() {
                return Err("--detect cross-validates the executor's own schedule; \
                            it cannot execute a --merge-epochs plan"
                    .into());
            }
            let cv = if remap {
                cross_validate_remapped(name, circuit, usize::try_from(pes)?, seed)?
            } else {
                cross_validate(name, circuit, usize::try_from(pes)?, seed)?
            };
            println!(
                "  dynamic: {} races at {} PEs, verdicts {}",
                cv.races.len(),
                cv.n_pes,
                if cv.agrees() { "agree" } else { "DISAGREE" }
            );
            for r in &cv.races {
                println!("    {r}");
            }
            if !cv.agrees() || !cv.races.is_empty() {
                bad += 1;
            }
        }
    }
    if bad > 0 {
        return Err(format!("{bad}/{} analyses failed the protocol check", targets.len()).into());
    }
    println!(
        "OK: {} plan(s) proven conflict-free at {pes} PEs{}",
        targets.len(),
        if detect {
            ", dynamic detector agrees"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let max_states: usize = flag_value(args, "--max-states").map_or(Ok(2_000_000), str::parse)?;

    println!("exhaustive protocol check (state cap {max_states}):");
    match sv_sim::verify::check_all(max_states) {
        Ok(bounds) => {
            for b in &bounds {
                println!("  {b}");
            }
            println!("OK: {} properties proven exhaustively", bounds.len());
            Ok(())
        }
        Err(violation) => Err(format!("protocol property violated\n{violation}").into()),
    }
}

fn cmd_lint(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    let root = flag_value(args, "--root").unwrap_or(".");
    let report = sv_sim::verify::lint::run(std::path::Path::new(root))?;
    for f in &report.findings {
        println!("{f}");
    }
    println!(
        "lint: {} files scanned, rules [{}], {} error(s), {} warning(s)",
        report.files_scanned,
        report.rules_run.join(", "),
        report.errors(),
        report.warnings(),
    );
    if report.errors() > 0 || (deny_warnings && report.warnings() > 0) {
        return Err("lint failed".into());
    }
    Ok(())
}
